//! Broadside (launch-on-capture) two-pattern tests (paper §1.3, Fig. 1.10).

use fbt_netlist::{Error, Netlist};
use fbt_sim::{comb, Bits};

/// A broadside test `<s1, v1, s2, v2>`.
///
/// Only `s1` (the scan-in state), `v1` and `v2` (the primary-input vectors of
/// the two patterns) are stored: under broadside operation the second-pattern
/// state `s2` is the circuit's response to `<s1, v1>` and is recomputed on
/// demand with [`BroadsideTest::second_state`].
///
/// A *functional* broadside test is one whose `s1` is a reachable state; the
/// tests extracted from a simulated trajectory in `fbt-core` are functional
/// by construction (paper §4.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BroadsideTest {
    /// Scan-in state `s1`.
    pub scan_in: Bits,
    /// Primary-input vector of the first pattern.
    pub v1: Bits,
    /// Primary-input vector of the second pattern.
    pub v2: Bits,
}

impl BroadsideTest {
    /// Construct a test from its stored components.
    ///
    /// # Panics
    ///
    /// Panics if `v1` and `v2` have different widths; use
    /// [`BroadsideTest::try_new`] for a fallible version.
    pub fn new(scan_in: Bits, v1: Bits, v2: Bits) -> Self {
        Self::try_new(scan_in, v1, v2).expect("primary-input widths differ")
    }

    /// Construct a test, reporting mismatched primary-input widths as an
    /// [`Error::WidthMismatch`] instead of panicking.
    pub fn try_new(scan_in: Bits, v1: Bits, v2: Bits) -> Result<Self, Error> {
        if v1.len() != v2.len() {
            return Err(Error::WidthMismatch {
                what: "broadside test primary inputs",
                expected: v1.len(),
                got: v2.len(),
            });
        }
        Ok(BroadsideTest { scan_in, v1, v2 })
    }

    /// Compute `s2`, the state under the second pattern.
    ///
    /// # Panics
    ///
    /// Panics if the test's widths do not match `net`.
    pub fn second_state(&self, net: &Netlist) -> Bits {
        let (_, s2) = frame_scalar(net, &self.v1, &self.scan_in);
        s2
    }

    /// Compute the test's observable response: the primary outputs under the
    /// second pattern and the captured final state `s3`.
    ///
    /// # Panics
    ///
    /// Panics if widths do not match `net`.
    pub fn response(&self, net: &Netlist) -> (Bits, Bits) {
        let s2 = self.second_state(net);
        let (po, s3) = frame_scalar(net, &self.v2, &s2);
        (po, s3)
    }
}

/// A scan-based two-pattern test with an *explicit* second-pattern state.
///
/// Under plain broadside operation `s2` is the response to `<s1, v1>` and
/// [`BroadsideTest`] suffices. The state-holding DFT (paper §4.5) gates some
/// flip-flop clocks during the launch transition, so the applied `s2` differs
/// from the natural response — possibly an unreachable state, which is the
/// mechanism that recovers coverage lost to the exclusive use of functional
/// broadside tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TwoPatternTest {
    /// First-pattern state.
    pub s1: Bits,
    /// First-pattern primary inputs.
    pub v1: Bits,
    /// Second-pattern state, as actually applied.
    pub s2: Bits,
    /// Second-pattern primary inputs.
    pub v2: Bits,
}

impl TwoPatternTest {
    /// Construct a test.
    ///
    /// # Panics
    ///
    /// Panics if widths are inconsistent; use [`TwoPatternTest::try_new`]
    /// for a fallible version.
    pub fn new(s1: Bits, v1: Bits, s2: Bits, v2: Bits) -> Self {
        Self::try_new(s1, v1, s2, v2).expect("two-pattern test widths differ")
    }

    /// Construct a test, reporting inconsistent widths as an
    /// [`Error::WidthMismatch`] instead of panicking.
    pub fn try_new(s1: Bits, v1: Bits, s2: Bits, v2: Bits) -> Result<Self, Error> {
        if v1.len() != v2.len() {
            return Err(Error::WidthMismatch {
                what: "two-pattern test primary inputs",
                expected: v1.len(),
                got: v2.len(),
            });
        }
        if s1.len() != s2.len() {
            return Err(Error::WidthMismatch {
                what: "two-pattern test states",
                expected: s1.len(),
                got: s2.len(),
            });
        }
        Ok(TwoPatternTest { s1, v1, s2, v2 })
    }

    /// Expand a broadside test by computing its natural second state.
    pub fn from_broadside(net: &Netlist, t: &BroadsideTest) -> Self {
        TwoPatternTest {
            s1: t.scan_in.clone(),
            v1: t.v1.clone(),
            s2: t.second_state(net),
            v2: t.v2.clone(),
        }
    }
}

/// Scalar one-frame evaluation returning (primary outputs, next state).
fn frame_scalar(net: &Netlist, pi: &Bits, state: &Bits) -> (Bits, Bits) {
    assert_eq!(pi.len(), net.num_inputs(), "PI width mismatch");
    assert_eq!(state.len(), net.num_dffs(), "state width mismatch");
    let mut vals = vec![false; net.num_nodes()];
    for (i, &id) in net.inputs().iter().enumerate() {
        vals[id.index()] = pi.get(i);
    }
    for (i, &id) in net.dffs().iter().enumerate() {
        vals[id.index()] = state.get(i);
    }
    comb::eval_scalar(net, &mut vals);
    let po: Bits = net.outputs().iter().map(|&o| vals[o.index()]).collect();
    let ns: Bits = net
        .dffs()
        .iter()
        .map(|&d| vals[net.node(d).fanins()[0].index()])
        .collect();
    (po, ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    #[test]
    fn second_state_matches_sequential_sim() {
        let net = s27();
        let t = BroadsideTest::new(
            Bits::from_str01("000"),
            Bits::from_str01("0000"),
            Bits::from_str01("1111"),
        );
        // From fbt-sim's seq test: s(1) under <000, 0000> is 001.
        assert_eq!(t.second_state(&net).to_string(), "001");
    }

    #[test]
    fn response_is_deterministic() {
        let net = s27();
        let t = BroadsideTest::new(
            Bits::from_str01("101"),
            Bits::from_str01("0101"),
            Bits::from_str01("1010"),
        );
        let (po1, s3a) = t.response(&net);
        let (po2, s3b) = t.response(&net);
        assert_eq!(po1, po2);
        assert_eq!(s3a, s3b);
        assert_eq!(po1.len(), 1);
        assert_eq!(s3a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "primary-input widths differ")]
    fn width_mismatch_panics() {
        let _ = BroadsideTest::new(Bits::zeros(3), Bits::zeros(4), Bits::zeros(5));
    }

    #[test]
    fn try_new_reports_width_mismatches() {
        assert!(matches!(
            BroadsideTest::try_new(Bits::zeros(3), Bits::zeros(4), Bits::zeros(5)),
            Err(Error::WidthMismatch {
                expected: 4,
                got: 5,
                ..
            })
        ));
        assert!(matches!(
            TwoPatternTest::try_new(
                Bits::zeros(3),
                Bits::zeros(4),
                Bits::zeros(2),
                Bits::zeros(4)
            ),
            Err(Error::WidthMismatch {
                expected: 3,
                got: 2,
                ..
            })
        ));
        assert!(BroadsideTest::try_new(Bits::zeros(3), Bits::zeros(4), Bits::zeros(4)).is_ok());
    }
}
