//! The transition fault model (paper §1.1).

use std::fmt;

use fbt_netlist::{GateKind, Netlist, NodeId};

/// Direction of a delayed transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transition {
    /// Slow-to-rise: the line is 0 under the first pattern and should become
    /// 1 under the second.
    Rise,
    /// Slow-to-fall: 1 under the first pattern, should become 0.
    Fall,
}

impl Transition {
    /// The value the line must have under the first pattern.
    #[inline]
    pub fn initial_value(self) -> bool {
        matches!(self, Transition::Fall)
    }

    /// The fault-free value under the second pattern.
    #[inline]
    pub fn final_value(self) -> bool {
        matches!(self, Transition::Rise)
    }

    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Transition {
        match self {
            Transition::Rise => Transition::Fall,
            Transition::Fall => Transition::Rise,
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Transition::Rise => "STR",
            Transition::Fall => "STF",
        })
    }
}

/// A transition fault: a large delay on one `line`, in one direction.
///
/// Detected by a broadside test that establishes the initial value under the
/// first pattern and detects the corresponding stuck-at fault under the
/// second pattern (paper Fig. 1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionFault {
    /// The faulty line.
    pub line: NodeId,
    /// Fault direction.
    pub transition: Transition,
}

impl TransitionFault {
    /// Construct a fault.
    pub fn new(line: NodeId, transition: Transition) -> Self {
        TransitionFault { line, transition }
    }
}

impl fmt::Display for TransitionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.transition, self.line)
    }
}

/// The full (uncollapsed) transition fault list: two faults per line.
///
/// Lines are all nodes of the netlist — primary inputs, flip-flop outputs
/// and gate outputs.
pub fn all_transition_faults(net: &Netlist) -> Vec<TransitionFault> {
    net.node_ids()
        .flat_map(|id| {
            [
                TransitionFault::new(id, Transition::Rise),
                TransitionFault::new(id, Transition::Fall),
            ]
        })
        .collect()
}

/// Structurally collapse a transition fault list.
///
/// A fault at the output of a single-fanout `BUF` is equivalent to the same
/// fault at its input; through a single-fanout `NOT` it is equivalent to the
/// opposite-direction fault at the input. Representatives are chosen at the
/// driver side (closest to the sources), matching the convention used by
/// commercial fault-list reports ("after fault collapsing", Table 4.3).
pub fn collapse(net: &Netlist, faults: &[TransitionFault]) -> Vec<TransitionFault> {
    let mut keep = Vec::with_capacity(faults.len());
    let mut seen = std::collections::HashSet::with_capacity(faults.len());
    for &f in faults {
        let rep = representative(net, f);
        if seen.insert(rep) {
            keep.push(rep);
        }
    }
    keep
}

/// Walk a fault backwards through single-fanout buffers/inverters to its
/// representative.
fn representative(net: &Netlist, mut f: TransitionFault) -> TransitionFault {
    loop {
        let node = net.node(f.line);
        let through = match node.kind() {
            GateKind::Buf => Some(false),
            GateKind::Not => Some(true),
            _ => None,
        };
        let Some(inverting) = through else {
            return f;
        };
        let fanin = node.fanins()[0];
        if net.node(fanin).fanouts().len() != 1 {
            return f;
        }
        f = TransitionFault::new(
            fanin,
            if inverting {
                f.transition.flip()
            } else {
                f.transition
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::{s27, NetlistBuilder};

    #[test]
    fn full_list_has_two_faults_per_line() {
        let net = s27();
        let faults = all_transition_faults(&net);
        assert_eq!(faults.len(), 2 * net.num_nodes());
    }

    #[test]
    fn initial_and_final_values() {
        assert!(!Transition::Rise.initial_value());
        assert!(Transition::Rise.final_value());
        assert!(Transition::Fall.initial_value());
        assert!(!Transition::Fall.final_value());
        assert_eq!(Transition::Rise.flip(), Transition::Fall);
    }

    #[test]
    fn collapse_through_buffer_chain() {
        let mut b = NetlistBuilder::new("chain");
        b.input("a").unwrap();
        b.gate(GateKind::Buf, "x", &["a"]).unwrap();
        b.gate(GateKind::Not, "y", &["x"]).unwrap();
        b.output("y").unwrap();
        let net = b.finish().unwrap();
        let faults = all_transition_faults(&net);
        let collapsed = collapse(&net, &faults);
        // a, x(=a), y(=!x=!a): everything collapses onto `a`: 2 faults remain.
        assert_eq!(collapsed.len(), 2);
        let a = net.find("a").unwrap();
        assert!(collapsed.iter().all(|f| f.line == a));
    }

    #[test]
    fn no_collapse_through_fanout() {
        let mut b = NetlistBuilder::new("fan");
        b.input("a").unwrap();
        b.gate(GateKind::Buf, "x", &["a"]).unwrap();
        b.gate(GateKind::Not, "y", &["a"]).unwrap();
        b.output("x").unwrap();
        b.output("y").unwrap();
        let net = b.finish().unwrap();
        let collapsed = collapse(&net, &all_transition_faults(&net));
        // `a` fans out twice: faults at x and y stay distinct from a's.
        assert_eq!(collapsed.len(), 6);
    }

    #[test]
    fn inverter_flips_direction() {
        let mut b = NetlistBuilder::new("inv");
        b.input("a").unwrap();
        b.gate(GateKind::Not, "y", &["a"]).unwrap();
        b.output("y").unwrap();
        let net = b.finish().unwrap();
        let y = net.find("y").unwrap();
        let a = net.find("a").unwrap();
        let rep = representative(&net, TransitionFault::new(y, Transition::Rise));
        assert_eq!(rep, TransitionFault::new(a, Transition::Fall));
    }

    #[test]
    fn collapse_is_idempotent_on_s27() {
        let net = s27();
        let once = collapse(&net, &all_transition_faults(&net));
        let twice = collapse(&net, &once);
        assert_eq!(once, twice);
        assert!(once.len() <= 2 * net.num_nodes());
    }

    #[test]
    fn display_formats() {
        let f = TransitionFault::new(NodeId(3), Transition::Rise);
        assert_eq!(f.to_string(), "STR@n3");
    }
}
