//! Single stuck-at faults and their simulation.
//!
//! Transition fault detection decomposes into a launch condition plus
//! stuck-at detection under the second pattern (paper §1.2, Fig. 1.3); a
//! standalone stuck-at simulator both grounds that reduction (see the
//! cross-validation test here) and rounds out the library for plain
//! combinational test flows.

use std::collections::HashMap;

use fbt_netlist::{Netlist, NodeId};
use fbt_sim::{comb, Bits};

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StuckAtFault {
    /// The faulty line.
    pub line: NodeId,
    /// The stuck value.
    pub value: bool,
}

impl std::fmt::Display for StuckAtFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SA{}@{}", self.value as u8, self.line)
    }
}

/// The full stuck-at fault list (two per line).
pub fn all_stuck_at_faults(net: &Netlist) -> Vec<StuckAtFault> {
    net.node_ids()
        .flat_map(|line| {
            [
                StuckAtFault { line, value: false },
                StuckAtFault { line, value: true },
            ]
        })
        .collect()
}

/// A one-pattern combinational test: a state plus a primary-input vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OnePatternTest {
    /// Scan-in state.
    pub state: Bits,
    /// Primary-input vector.
    pub inputs: Bits,
}

/// Bit-parallel stuck-at fault simulator (64 tests per word, cone-limited,
/// fault dropping) — the single-frame sibling of
/// the broadside engines in [`crate::engine`].
#[derive(Debug)]
pub struct StuckAtSim<'a> {
    net: &'a Netlist,
    observable: Vec<bool>,
    cone_cache: HashMap<NodeId, Box<[NodeId]>>,
}

impl<'a> StuckAtSim<'a> {
    /// Build a simulator.
    pub fn new(net: &'a Netlist) -> Self {
        let mut observable = vec![false; net.num_nodes()];
        for &o in net.outputs() {
            observable[o.index()] = true;
        }
        for &d in net.dffs() {
            observable[net.node(d).fanins()[0].index()] = true;
        }
        StuckAtSim {
            net,
            observable,
            cone_cache: HashMap::new(),
        }
    }

    /// Simulate `tests` against undetected faults; set flags, return the
    /// number newly detected.
    ///
    /// # Panics
    ///
    /// Panics on length/width mismatches.
    pub fn run(
        &mut self,
        tests: &[OnePatternTest],
        faults: &[StuckAtFault],
        detected: &mut [bool],
    ) -> usize {
        assert_eq!(faults.len(), detected.len(), "flag vector length mismatch");
        let mut newly = 0;
        for chunk in tests.chunks(64) {
            newly += self.run_batch(chunk, faults, detected);
        }
        newly
    }

    /// Does one test detect one fault?
    pub fn detects(&mut self, test: &OnePatternTest, fault: &StuckAtFault) -> bool {
        let mut flags = [false];
        self.run_batch(
            std::slice::from_ref(test),
            std::slice::from_ref(fault),
            &mut flags,
        );
        flags[0]
    }

    fn run_batch(
        &mut self,
        tests: &[OnePatternTest],
        faults: &[StuckAtFault],
        detected: &mut [bool],
    ) -> usize {
        assert!(tests.len() <= 64, "batch too wide");
        if tests.is_empty() {
            return 0;
        }
        let net = self.net;
        let lanes_mask: u64 = if tests.len() == 64 {
            !0
        } else {
            (1u64 << tests.len()) - 1
        };
        let mut piw = vec![0u64; net.num_inputs()];
        let mut stw = vec![0u64; net.num_dffs()];
        for (lane, t) in tests.iter().enumerate() {
            assert_eq!(t.inputs.len(), net.num_inputs(), "PI width mismatch");
            assert_eq!(t.state.len(), net.num_dffs(), "state width mismatch");
            let bit = 1u64 << lane;
            for (i, w) in piw.iter_mut().enumerate() {
                if t.inputs.get(i) {
                    *w |= bit;
                }
            }
            for (i, w) in stw.iter_mut().enumerate() {
                if t.state.get(i) {
                    *w |= bit;
                }
            }
        }
        let mut good = vec![0u64; net.num_nodes()];
        comb::load_sources_packed(net, &piw, &stw, &mut good);
        comb::eval_packed(net, &mut good);

        let mut scratch = good.clone();
        let mut newly = 0;
        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let g = fault.line.index();
            let stuck_word: u64 = if fault.value { !0 } else { 0 };
            // Activation: the good value differs from the stuck value.
            if lanes_mask & (good[g] ^ stuck_word) == 0 {
                continue;
            }
            let cone = self
                .cone_cache
                .entry(fault.line)
                .or_insert_with(|| net.fanout_cone(fault.line).into_boxed_slice());
            scratch[g] = stuck_word;
            comb::eval_packed_cone(net, &cone[1..], &mut scratch);
            let mut diff = 0u64;
            for &c in cone.iter() {
                if self.observable[c.index()] {
                    diff |= scratch[c.index()] ^ good[c.index()];
                }
            }
            for &c in cone.iter() {
                scratch[c.index()] = good[c.index()];
            }
            if diff & lanes_mask != 0 {
                detected[fi] = true;
                newly += 1;
            }
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{FaultSimEngine, SerialSim};
    use crate::{BroadsideTest, Transition, TransitionFault};
    use fbt_netlist::rng::Rng;
    use fbt_netlist::s27;

    #[test]
    fn random_tests_detect_most_stuck_at_faults_on_s27() {
        let net = s27();
        let faults = all_stuck_at_faults(&net);
        let mut rng = Rng::new(4);
        let tests: Vec<OnePatternTest> = (0..128)
            .map(|_| OnePatternTest {
                state: (0..3).map(|_| rng.bit()).collect(),
                inputs: (0..4).map(|_| rng.bit()).collect(),
            })
            .collect();
        let mut sim = StuckAtSim::new(&net);
        let mut detected = vec![false; faults.len()];
        sim.run(&tests, &faults, &mut detected);
        let cov = detected.iter().filter(|&&d| d).count();
        assert!(
            cov * 10 >= faults.len() * 9,
            "coverage {cov}/{}",
            faults.len()
        );
        // Idempotent re-run detects nothing new.
        assert_eq!(sim.run(&tests, &faults, &mut detected), 0);
    }

    #[test]
    fn transition_fault_detection_reduces_to_stuck_at_under_pattern_two() {
        // Paper §1.2: a broadside test detects a v -> v' transition fault
        // iff pattern 1 sets the line to v AND pattern 2 detects
        // stuck-at-v.
        let net = s27();
        let mut fsim = SerialSim::new(&net);
        let mut ssim = StuckAtSim::new(&net);
        let mut rng = Rng::new(13);
        for _ in 0..60 {
            let t = BroadsideTest::new(
                (0..3).map(|_| rng.bit()).collect(),
                (0..4).map(|_| rng.bit()).collect(),
                (0..4).map(|_| rng.bit()).collect(),
            );
            let s2 = t.second_state(&net);
            // Frame-1 values for the launch check.
            let mut f1 = vec![false; net.num_nodes()];
            for (i, &id) in net.inputs().iter().enumerate() {
                f1[id.index()] = t.v1.get(i);
            }
            for (i, &id) in net.dffs().iter().enumerate() {
                f1[id.index()] = t.scan_in.get(i);
            }
            fbt_sim::comb::eval_scalar(&net, &mut f1);
            let p2 = OnePatternTest {
                state: s2.clone(),
                inputs: t.v2.clone(),
            };
            for line in net.node_ids() {
                for dir in [Transition::Rise, Transition::Fall] {
                    let tf = TransitionFault::new(line, dir);
                    let launch = f1[line.index()] == dir.initial_value();
                    let sa = StuckAtFault {
                        line,
                        value: dir.initial_value(),
                    };
                    let expect = launch && ssim.detects(&p2, &sa);
                    assert_eq!(fsim.detects(&t, &tf), expect, "fault {tf}");
                }
            }
        }
    }

    #[test]
    fn display_format() {
        let f = StuckAtFault {
            line: NodeId(2),
            value: true,
        };
        assert_eq!(f.to_string(), "SA1@n2");
    }
}
