//! Path sensitization classification (paper §1.2, Figs. 1.4–1.7).
//!
//! Tests for path delay faults are graded by the propagation conditions they
//! establish:
//!
//! * **robust** — detection guaranteed regardless of delays elsewhere;
//! * **strong non-robust** — a matching transition appears on every on-path
//!   line and every off-path input is non-controlling under the second
//!   pattern (these are exactly the tests for transition path delay faults,
//!   §2.2);
//! * **weak non-robust** — only the off-path non-controlling condition under
//!   the second pattern (plus the launch transition at the source);
//! * **not sensitized** — none of the above.

use fbt_netlist::{Netlist, NodeId};
use fbt_sim::comb;

use crate::{Path, Transition, TwoPatternTest};

/// How a two-pattern test sensitizes a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sensitization {
    /// No sensitization (the test does not even launch the transition, or an
    /// off-path input blocks propagation under the second pattern).
    NotSensitized,
    /// Weak non-robust: launch transition + static sensitization under the
    /// second pattern. Valid only if no off-path signal arrives late
    /// (Fig. 1.5).
    WeakNonRobust,
    /// Strong non-robust: weak, plus a polarity-matching transition on every
    /// on-path line. Equivalent to detecting every transition fault's launch
    /// and final value along the path.
    StrongNonRobust,
    /// Robust: strong, plus steady off-path side inputs wherever the on-path
    /// transition ends at a non-controlling value (Fig. 1.4). Valid
    /// regardless of delays in the rest of the circuit.
    Robust,
}

/// Evaluate both patterns of a test (full node values per frame).
fn frame_values(net: &Netlist, test: &TwoPatternTest) -> (Vec<bool>, Vec<bool>) {
    let eval = |state: &fbt_sim::Bits, pi: &fbt_sim::Bits| {
        let mut vals = vec![false; net.num_nodes()];
        for (i, &id) in net.inputs().iter().enumerate() {
            vals[id.index()] = pi.get(i);
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            vals[id.index()] = state.get(i);
        }
        comb::eval_scalar(net, &mut vals);
        vals
    };
    (eval(&test.s1, &test.v1), eval(&test.s2, &test.v2))
}

/// Classify how `test` sensitizes `path` for the given source transition.
///
/// # Example
///
/// ```
/// use fbt_fault::{classify, BroadsideTest, Path, Sensitization, Transition, TwoPatternTest};
/// use fbt_sim::Bits;
///
/// let net = fbt_netlist::s27();
/// // Path G0 -> G14 (through the input inverter).
/// let path = Path::new(&net, vec![net.find("G0").unwrap(), net.find("G14").unwrap()]);
/// let t = TwoPatternTest::from_broadside(
///     &net,
///     &BroadsideTest::new(
///         Bits::from_str01("000"),
///         Bits::from_str01("0000"),
///         Bits::from_str01("1000"),
///     ),
/// );
/// let class = classify(&net, &t, &path, Transition::Rise);
/// assert!(class >= Sensitization::WeakNonRobust);
/// ```
///
/// # Panics
///
/// Panics if the test's widths do not match `net`.
pub fn classify(
    net: &Netlist,
    test: &TwoPatternTest,
    path: &Path,
    source: Transition,
) -> Sensitization {
    let (v1, v2) = frame_values(net, test);
    let nodes = path.nodes();

    // Launch transition at the source.
    let src = nodes[0].index();
    if v1[src] != source.initial_value() || v2[src] != source.final_value() {
        return Sensitization::NotSensitized;
    }

    // Expected direction per on-path line.
    let mut dirs: Vec<Transition> = Vec::with_capacity(nodes.len());
    let mut dir = source;
    dirs.push(dir);
    for &n in &nodes[1..] {
        if net.node(n).kind().inverts() {
            dir = dir.flip();
        }
        dirs.push(dir);
    }

    // Weak non-robust: static sensitization under the second pattern —
    // every on-path line has its expected final value and every off-path
    // gate input is non-controlling under p2.
    for (i, w) in nodes.windows(2).enumerate() {
        let (on_path, gate) = (w[0], w[1]);
        let g = net.node(gate);
        if v2[gate.index()] != dirs[i + 1].final_value() {
            return Sensitization::NotSensitized;
        }
        if let Some(c) = g.kind().controlling_value() {
            for &side in g.fanins() {
                if side != on_path && v2[side.index()] == c {
                    return Sensitization::NotSensitized;
                }
            }
        }
        let _ = on_path;
    }

    // Strong non-robust: matching transitions on every on-path line.
    let strong = nodes
        .iter()
        .zip(&dirs)
        .all(|(&n, d)| v1[n.index()] == d.initial_value() && v2[n.index()] == d.final_value());
    if !strong {
        return Sensitization::WeakNonRobust;
    }

    // Robust: where the on-path input's transition ends non-controlling,
    // the side inputs must be *steady* non-controlling across both patterns
    // (otherwise a late off-path transition could mask the on-path one).
    // XOR-class gates have no controlling value: robustness demands steady
    // side inputs unconditionally.
    let robust = nodes.windows(2).enumerate().all(|(i, w)| {
        let (on_path, gate) = (w[0], w[1]);
        let g = net.node(gate);
        let steady_required = match g.kind().controlling_value() {
            // On-path transition ends at the controlling value: the output
            // change is forced by the on-path input alone; sides only need
            // the (already checked) p2 non-controlling value.
            Some(c) => dirs[i].final_value() != c,
            None => true,
        };
        if !steady_required {
            return true;
        }
        g.fanins()
            .iter()
            .all(|&side: &NodeId| side == on_path || v1[side.index()] == v2[side.index()])
    });
    if robust {
        Sensitization::Robust
    } else {
        Sensitization::StrongNonRobust
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::{GateKind, NetlistBuilder};
    use fbt_sim::Bits;

    /// The dissertation's Fig. 1.2 combinational circuit, wrapped with no
    /// state: a, b, d, f inputs; c = AND(a, b'); e = OR(c, d);
    /// g = AND(e, f').
    ///
    /// (The original figure drives c and g through inverters on b and f; the
    /// polarity bookkeeping is identical.)
    fn fig12() -> (Netlist, Path) {
        let mut bld = NetlistBuilder::new("fig12");
        for n in ["a", "b", "d", "f"] {
            bld.input(n).unwrap();
        }
        // One flip-flop so the circuit is sequential (contents irrelevant).
        bld.dff("q", "g").unwrap();
        bld.gate(GateKind::Not, "b_n", &["b"]).unwrap();
        bld.gate(GateKind::Not, "f_n", &["f"]).unwrap();
        bld.gate(GateKind::And, "c", &["a", "b_n"]).unwrap();
        bld.gate(GateKind::Or, "e", &["c", "d"]).unwrap();
        bld.gate(GateKind::And, "g", &["e", "f_n"]).unwrap();
        bld.output("g").unwrap();
        let net = bld.finish().unwrap();
        let path = Path::new(
            &net,
            ["a", "c", "e", "g"].map(|n| net.find(n).unwrap()).to_vec(),
        );
        (net, path)
    }

    fn test(_net: &Netlist, s1: &str, v1: &str, v2: &str) -> TwoPatternTest {
        // Explicit two-pattern test with s2 = s1 (state plays no role in the
        // figure circuits).
        TwoPatternTest::new(
            Bits::from_str01(s1),
            Bits::from_str01(v1),
            Bits::from_str01(s1),
            Bits::from_str01(v2),
        )
    }

    use fbt_netlist::Netlist;

    #[test]
    fn fig_1_4_robust_test() {
        // <0010, 1010> on "abdf": a rises, b = 0, d falls? — paper: d goes
        // 1 -> 0? In Fig. 1.4, "abdf" = <0010, 1010>: a 0->1, b 0->0,
        // d 1->1? The figure's robust test holds b, d, f steady.
        // Here: a rises, everything else steady at non-controlling.
        let (net, path) = fig12();
        let t = test(&net, "0", "0000", "1000"); // a rises; b=d=f=0 steady
        assert_eq!(
            classify(&net, &t, &path, Transition::Rise),
            Sensitization::Robust
        );
    }

    #[test]
    fn fig_1_5_non_robust_when_off_path_input_switches() {
        // The paper's non-robust variant lets the off-path input f change
        // (falling) while still non-controlling at p2: f' rises into the
        // final AND — a late arrival there could mask the on-path
        // transition, so the test is only strong non-robust.
        let (net, path) = fig12();
        let t = test(&net, "0", "0001", "1000"); // a rises; f falls (f' rises)
        assert_eq!(
            classify(&net, &t, &path, Transition::Rise),
            Sensitization::StrongNonRobust
        );
    }

    #[test]
    fn weak_but_not_strong_when_an_on_path_line_has_no_transition() {
        // Reconvergence kills the on-path transition while static
        // sensitization survives: h = OR(d, e), d = AND(a, b), e = NOT(b).
        // Path b-d-h rising at b: d rises, e falls, but h stays 1.
        let mut bld = NetlistBuilder::new("reconv");
        bld.input("a").unwrap();
        bld.input("b").unwrap();
        bld.dff("q", "h").unwrap();
        bld.gate(GateKind::And, "d", &["a", "b"]).unwrap();
        bld.gate(GateKind::Not, "e", &["b"]).unwrap();
        bld.gate(GateKind::Or, "h", &["d", "e"]).unwrap();
        bld.output("h").unwrap();
        let net = bld.finish().unwrap();
        let path = Path::new(&net, ["b", "d", "h"].map(|n| net.find(n).unwrap()).to_vec());
        let t = test(&net, "0", "10", "11"); // a=1 steady, b rises
        assert_eq!(
            classify(&net, &t, &path, Transition::Rise),
            Sensitization::WeakNonRobust
        );
        // And (the Fig. 1.6/1.7 point) the on-path transition fault at h is
        // NOT detected by this test, although the path delay fault is
        // weak-non-robustly sensitized.
        use crate::engine::FaultSimEngine;
        let mut fsim = crate::engine::SerialSim::new(&net);
        let h = net.find("h").unwrap();
        let broadside = crate::BroadsideTest::new(t.s1.clone(), t.v1.clone(), t.v2.clone());
        assert!(!fsim.detects(
            &broadside,
            &crate::TransitionFault::new(h, Transition::Rise)
        ));
    }

    #[test]
    fn blocked_side_input_is_not_sensitized() {
        let (net, path) = fig12();
        // f = 1 under p2 makes f' = 0, a controlling 0 on the final AND.
        let t = test(&net, "0", "0000", "1001");
        assert_eq!(
            classify(&net, &t, &path, Transition::Rise),
            Sensitization::NotSensitized
        );
    }

    #[test]
    fn missing_launch_is_not_sensitized() {
        let (net, path) = fig12();
        let t = test(&net, "0", "1000", "1000"); // a steady 1: no launch
        assert_eq!(
            classify(&net, &t, &path, Transition::Rise),
            Sensitization::NotSensitized
        );
    }

    #[test]
    fn grading_is_ordered() {
        assert!(Sensitization::Robust > Sensitization::StrongNonRobust);
        assert!(Sensitization::StrongNonRobust > Sensitization::WeakNonRobust);
        assert!(Sensitization::WeakNonRobust > Sensitization::NotSensitized);
    }

    #[test]
    fn strong_tests_detect_all_on_path_transition_faults() {
        // The §2.2 equivalence, checked on the Fig. 1.2 circuit: a strong
        // non-robust (or robust) test detects the launch+final condition of
        // every on-path transition fault.
        let (net, path) = fig12();
        for (s1v, v1v, v2v) in [("0", "0000", "1000"), ("0", "0001", "1000")] {
            let t = test(&net, s1v, v1v, v2v);
            let class = classify(&net, &t, &path, Transition::Rise);
            assert!(class >= Sensitization::StrongNonRobust);
            let (f1, f2) = super::frame_values(&net, &t);
            let fault = crate::TransitionPathDelayFault::new(path.clone(), Transition::Rise);
            for tf in fault.transition_faults(&net) {
                assert_eq!(f1[tf.line.index()], tf.transition.initial_value());
                assert_eq!(f2[tf.line.index()], tf.transition.final_value());
            }
        }
    }
}
