//! Static test-set compaction.
//!
//! The paper compacts its seed/test sets with "a procedure similar to
//! reverse order fault simulation called forward-looking fault simulation"
//! (\[89\], used in §4.3). Both classics are provided:
//!
//! * [`reverse_order`] — walk the test set backwards with a fresh fault
//!   list; keep a test only if it detects something still uncovered;
//! * [`forward_looking`] — walk forwards; keep a test only if it detects
//!   some fault that **no later test** detects (so dropping it would lose
//!   that fault). Order-preserving and typically slightly larger than
//!   reverse-order, but a single simulation pass in spirit.
//!
//! Both preserve fault coverage exactly.

use fbt_fault::{BroadsideTest, TransitionFault};
use fbt_fault::{FaultSimEngine, FaultSimOptions, PackedParallelSim, SerialSim, TestSet};
use fbt_netlist::Netlist;

/// Reverse-order compaction: indices (in increasing order) of the kept
/// tests.
pub fn reverse_order(
    net: &Netlist,
    tests: &[BroadsideTest],
    faults: &[TransitionFault],
) -> Vec<usize> {
    let mut fsim = SerialSim::new(net);
    let mut detected = vec![false; faults.len()];
    let mut kept = Vec::new();
    for i in (0..tests.len()).rev() {
        let newly = fsim
            .simulate(
                TestSet::Broadside(std::slice::from_ref(&tests[i])),
                faults,
                &mut detected,
                &FaultSimOptions::new(),
            )
            .newly_detected;
        if newly > 0 {
            kept.push(i);
        }
    }
    kept.reverse();
    kept
}

/// Forward-looking compaction (\[89\]): a test is essential when some fault
/// it detects is detected by no later test.
pub fn forward_looking(
    net: &Netlist,
    tests: &[BroadsideTest],
    faults: &[TransitionFault],
) -> Vec<usize> {
    let mut fsim = PackedParallelSim::new(net);
    let matrix = fsim.detection_matrix(tests, faults);
    let words = matrix.words_per_row();
    // last_det[f] = index of the last test detecting fault f.
    let last_det: Vec<Option<usize>> = (0..faults.len())
        .map(|f| {
            let row = matrix.row(f);
            (0..words)
                .rev()
                .find(|&w| row[w] != 0)
                .map(|w| w * 64 + (63 - row[w].leading_zeros() as usize))
        })
        .collect();
    // Keep, in order, any test that is the last detector of a still-covered
    // fault — but once a test is kept, faults it detects are covered and no
    // longer force later keeps.
    let mut covered = vec![false; faults.len()];
    let mut kept = Vec::new();
    for (i, _) in tests.iter().enumerate() {
        let essential = (0..faults.len()).any(|f| !covered[f] && last_det[f] == Some(i));
        let detects_uncovered = (0..faults.len()).any(|f| !covered[f] && matrix.detects(f, i));
        if essential && detects_uncovered {
            kept.push(i);
            for (f, c) in covered.iter_mut().enumerate() {
                if matrix.detects(f, i) {
                    *c = true;
                }
            }
        }
    }
    // A second sweep catches faults whose last detector was skipped because
    // it looked non-essential at the time (cannot happen with the rule
    // above, but keep coverage airtight against future edits).
    for f in 0..faults.len() {
        if !covered[f] {
            if let Some(i) = last_det[f] {
                kept.push(i);
                for (g, c) in covered.iter_mut().enumerate() {
                    if matrix.detects(g, i) {
                        *c = true;
                    }
                }
            }
        }
    }
    kept.sort_unstable();
    kept.dedup();
    kept
}

/// Coverage of a test subset (by index) against a fault list.
pub fn subset_coverage(
    net: &Netlist,
    tests: &[BroadsideTest],
    subset: &[usize],
    faults: &[TransitionFault],
) -> usize {
    let mut fsim = PackedParallelSim::new(net);
    let mut detected = vec![false; faults.len()];
    let selected: Vec<BroadsideTest> = subset.iter().map(|&i| tests[i].clone()).collect();
    fsim.simulate(
        TestSet::Broadside(&selected),
        faults,
        &mut detected,
        &FaultSimOptions::new(),
    );
    detected.iter().filter(|&&d| d).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_fault::all_transition_faults;
    use fbt_netlist::rng::Rng;
    use fbt_netlist::s27;

    fn random_tests(n: usize, seed: u64) -> Vec<BroadsideTest> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                BroadsideTest::new(
                    (0..3).map(|_| rng.bit()).collect(),
                    (0..4).map(|_| rng.bit()).collect(),
                    (0..4).map(|_| rng.bit()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn both_methods_preserve_coverage() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(200, 3);
        let all: Vec<usize> = (0..tests.len()).collect();
        let full = subset_coverage(&net, &tests, &all, &faults);
        for kept in [
            reverse_order(&net, &tests, &faults),
            forward_looking(&net, &tests, &faults),
        ] {
            assert_eq!(subset_coverage(&net, &tests, &kept, &faults), full);
            assert!(kept.len() < tests.len(), "random sets are redundant");
            assert!(kept.windows(2).all(|w| w[0] < w[1]), "sorted order");
        }
    }

    #[test]
    fn compaction_shrinks_substantially_on_redundant_sets() {
        let net = s27();
        let faults = all_transition_faults(&net);
        // Duplicate the same few tests many times.
        let base = random_tests(10, 9);
        let mut tests = Vec::new();
        for _ in 0..20 {
            tests.extend(base.clone());
        }
        let kept = reverse_order(&net, &tests, &faults);
        assert!(kept.len() <= base.len());
    }

    #[test]
    fn empty_inputs() {
        let net = s27();
        let faults = all_transition_faults(&net);
        assert!(reverse_order(&net, &[], &faults).is_empty());
        assert!(forward_looking(&net, &[], &faults).is_empty());
    }
}
