//! The deterministic test generation pipeline for transition path delay
//! faults (paper §2.3): five sub-procedures of increasing power, so that the
//! expensive complete branch-and-bound only sees the faults nothing cheaper
//! could decide.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use fbt_fault::{
    BroadsideTest, FaultSimEngine, PackedParallelSim, TransitionFault, TransitionPathDelayFault,
};
use fbt_netlist::rng::Rng;
use fbt_netlist::{GateKind, Netlist};
use fbt_sim::Trit;

use crate::frames::{var_parts, FaultStatus, Frame, TwoFrame};
use crate::necessary::{tpdf_analysis, Analysis, VarAssign};
use crate::podem::{AtpgOutcome, Podem, PodemConfig};
use crate::sat_backend::SatBackend;
use crate::TestCube;

/// Which sub-procedure decided a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubProcedure {
    /// Static lint pre-flight: transition faults on structurally constant
    /// or combinationally unobservable lines are untestable by
    /// construction ([`fbt_lint::PreflightEvidence`]), so the path faults
    /// containing them are decided before any search runs.
    Preflight,
    /// §2.3.2 preprocessing (includes undetectable transition faults found
    /// during §2.3.1 test generation).
    Preprocess,
    /// §2.3.3 fault simulation of the transition-fault tests.
    FaultSim,
    /// §2.3.4 dynamic-compaction heuristic.
    Heuristic,
    /// §2.3.5 complete branch-and-bound.
    BranchBound,
    /// SAT fallback: complete time-frame-expansion search resolving faults
    /// the branch-and-bound aborted on, with UNSAT untestability proofs.
    SatSolver,
}

/// The pipeline's verdict for one transition path delay fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpdfStatus {
    /// Detected, with the deciding sub-procedure and a test.
    Detected(SubProcedure, TestCube),
    /// Proven undetectable by the named sub-procedure.
    Undetectable(SubProcedure),
    /// Undecided within the limits.
    Aborted,
}

impl TpdfStatus {
    /// Whether a test was found.
    pub fn is_detected(&self) -> bool {
        matches!(self, TpdfStatus::Detected(..))
    }

    /// Whether proven undetectable.
    pub fn is_undetectable(&self) -> bool {
        matches!(self, TpdfStatus::Undetectable(_))
    }
}

/// Pipeline limits (paper §2.4: 1 min heuristic, 2 min branch-and-bound,
/// 128 backtracks for transition-fault test generation).
#[derive(Debug, Clone)]
pub struct TpdfConfig {
    /// Limits for transition-fault PODEM (§2.3.1 and inside the heuristic).
    pub tf_podem: PodemConfig,
    /// Wall-clock limit per fault in the heuristic.
    pub heuristic_time_limit: Duration,
    /// Limits for the complete branch-and-bound per fault.
    pub bnb: PodemConfig,
    /// Resolve faults the branch-and-bound aborts on with the complete SAT
    /// backend ([`crate::SatBackend`]); its UNSAT verdicts surface as
    /// [`SubProcedure::SatSolver`] untestability proofs in the statistics.
    pub sat_fallback: bool,
    /// Decide faults on structurally constant or unobservable lines as
    /// untestable before any search runs ([`SubProcedure::Preflight`]).
    /// Sound for every circuit: skipped faults are untestable under any
    /// test, so the remaining verdicts are unchanged.
    pub preflight: bool,
    /// Random tie-break seed.
    pub seed: u64,
}

impl Default for TpdfConfig {
    fn default() -> Self {
        TpdfConfig {
            tf_podem: PodemConfig {
                backtrack_limit: 128,
                time_limit: Duration::from_secs(5),
            },
            heuristic_time_limit: Duration::from_secs(2),
            bnb: PodemConfig {
                backtrack_limit: 4096,
                time_limit: Duration::from_secs(4),
            },
            sat_fallback: true,
            preflight: true,
            seed: 0x7BDF,
        }
    }
}

/// Per-sub-procedure accounting for Tables 2.3–2.6.
#[derive(Debug, Clone, Default)]
pub struct SubProcedureStats {
    /// Faults decided *detected* by each sub-procedure.
    pub detected: HashMap<SubProcedure, usize>,
    /// Faults decided *undetectable* by each sub-procedure.
    pub undetectable: HashMap<SubProcedure, usize>,
    /// Wall-clock time of transition-fault test generation (§2.3.1).
    pub tf_generation_time: Duration,
    /// Wall-clock time per sub-procedure.
    pub times: HashMap<SubProcedure, Duration>,
}

/// The pipeline's full report.
#[derive(Debug, Clone)]
pub struct TpdfReport {
    /// Per-fault verdicts, aligned with the input fault list.
    pub statuses: Vec<TpdfStatus>,
    /// Accounting.
    pub stats: SubProcedureStats,
}

impl TpdfReport {
    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_detected()).count()
    }

    /// Number of faults proven undetectable.
    pub fn num_undetectable(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_undetectable()).count()
    }

    /// Number of aborted faults.
    pub fn num_aborted(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| matches!(s, TpdfStatus::Aborted))
            .count()
    }
}

/// Build a base cube from input necessary assignments (frame-2 state-variable
/// entries are implied under broadside operation and are skipped).
pub fn cube_from_inputs(net: &Netlist, assigns: &[VarAssign]) -> TestCube {
    let n = net.num_nodes();
    let mut cube = TestCube::unspecified(net);
    for &(var, val) in assigns {
        let (frame, node) = var_parts(n, var);
        let t = Trit::from_bool(val);
        match (frame, net.node(node).kind()) {
            (Frame::First, GateKind::Input) => {
                let i = net.inputs().iter().position(|&p| p == node).expect("PI");
                cube.v1[i] = t;
            }
            (Frame::Second, GateKind::Input) => {
                let i = net.inputs().iter().position(|&p| p == node).expect("PI");
                cube.v2[i] = t;
            }
            (Frame::First, GateKind::Dff) => {
                let i = net.dffs().iter().position(|&d| d == node).expect("FF");
                cube.s1[i] = t;
            }
            _ => {}
        }
    }
    cube
}

/// Which transition faults of `trs` are already (definitely) detected under
/// `cube`?
fn detected_under(
    engine: &mut TwoFrame<'_>,
    cube: &TestCube,
    trs: &[TransitionFault],
) -> Vec<bool> {
    engine.load_cube(cube);
    engine.forward();
    trs.iter()
        .map(|t| matches!(engine.fault_status(t), FaultStatus::Detected))
        .collect()
}

/// Run the full pipeline over a fault list.
///
/// # Example
///
/// ```
/// use fbt_atpg::tpdf::{run_pipeline, TpdfConfig};
/// use fbt_fault::path::{enumerate_paths, tpdf_list};
///
/// let net = fbt_netlist::s27();
/// let faults = tpdf_list(&enumerate_paths(&net, usize::MAX));
/// let report = run_pipeline(&net, &faults, &TpdfConfig::default());
/// assert_eq!(report.statuses.len(), 56);
/// assert_eq!(report.num_aborted(), 0);
/// ```
pub fn run_pipeline(
    net: &Netlist,
    faults: &[TransitionPathDelayFault],
    cfg: &TpdfConfig,
) -> TpdfReport {
    let mut stats = SubProcedureStats::default();
    let mut statuses: Vec<Option<TpdfStatus>> = vec![None; faults.len()];
    let mut rng = Rng::new(cfg.seed);

    let mut unique_tfs: Vec<TransitionFault> = Vec::new();
    let mut tf_index: HashMap<TransitionFault, usize> = HashMap::new();
    for f in faults {
        for t in f.transition_faults(net) {
            tf_index.entry(t).or_insert_with(|| {
                unique_tfs.push(t);
                unique_tfs.len() - 1
            });
        }
    }

    // ---- Sub-procedure 0: static lint pre-flight. A transition fault on a
    // structurally constant line can never launch, and one on a
    // combinationally unobservable line can never propagate; a path fault
    // containing such a transition fault is undetectable without search.
    let mut undetectable_tfs: HashSet<TransitionFault> = HashSet::new();
    if cfg.preflight {
        let t0 = Instant::now();
        let evidence = fbt_lint::PreflightEvidence::analyze(net);
        for t in &unique_tfs {
            if evidence.transition_untestable(t.line) {
                undetectable_tfs.insert(*t);
            }
        }
        let mut undet_pre = 0usize;
        if !undetectable_tfs.is_empty() {
            for (i, f) in faults.iter().enumerate() {
                if f.transition_faults(net)
                    .iter()
                    .any(|t| undetectable_tfs.contains(t))
                {
                    statuses[i] = Some(TpdfStatus::Undetectable(SubProcedure::Preflight));
                    undet_pre += 1;
                }
            }
        }
        stats
            .undetectable
            .insert(SubProcedure::Preflight, undet_pre);
        stats.times.insert(SubProcedure::Preflight, t0.elapsed());
    }

    // ---- Sub-procedure 1: deterministic test generation for the unique
    // transition faults along the paths (§2.3.1). Pre-flight-decided faults
    // skip PODEM entirely.
    let t0 = Instant::now();
    let mut podem = Podem::new(net, cfg.tf_podem);
    let mut tf_tests: Vec<BroadsideTest> = Vec::new();
    for t in &unique_tfs {
        if undetectable_tfs.contains(t) {
            continue;
        }
        match podem.generate(t) {
            AtpgOutcome::Test(cube) => tf_tests.push(cube.fill_random(&mut rng)),
            AtpgOutcome::Untestable => {
                undetectable_tfs.insert(*t);
            }
            AtpgOutcome::Aborted => {}
        }
    }
    stats.tf_generation_time = t0.elapsed();

    // ---- Sub-procedure 2: preprocessing (§2.3.2).
    let t0 = Instant::now();
    let mut necessary: Vec<Option<Vec<VarAssign>>> = vec![None; faults.len()];
    let mut undet_prep = 0usize;
    for (i, f) in faults.iter().enumerate() {
        if statuses[i].is_some() {
            continue;
        }
        match tpdf_analysis(net, f, &undetectable_tfs) {
            Analysis::Undetectable => {
                statuses[i] = Some(TpdfStatus::Undetectable(SubProcedure::Preprocess));
                undet_prep += 1;
            }
            Analysis::Potential(sets) => {
                necessary[i] = Some(sets.input_necessary);
            }
        }
    }
    stats
        .undetectable
        .insert(SubProcedure::Preprocess, undet_prep);
    stats.times.insert(SubProcedure::Preprocess, t0.elapsed());

    // ---- Sub-procedure 3: fault simulation of the transition-fault tests
    // under the path faults (§2.3.3): a path fault is detected by a test iff
    // the test detects every transition fault along its path.
    let t0 = Instant::now();
    let mut fsim = PackedParallelSim::new(net);
    let matrix = fsim.detection_matrix(&tf_tests, &unique_tfs);
    let words = matrix.words_per_row();
    let mut det_fsim = 0usize;
    for (i, f) in faults.iter().enumerate() {
        if statuses[i].is_some() {
            continue;
        }
        let trs = f.transition_faults(net);
        'word: for w in 0..words {
            let mut all = !0u64;
            for t in &trs {
                all &= matrix.row(tf_index[t])[w];
                if all == 0 {
                    continue 'word;
                }
            }
            // Some test in this word detects every transition fault.
            let lane = all.trailing_zeros() as usize;
            let test = &tf_tests[w * 64 + lane];
            let cube = TestCube {
                s1: test.scan_in.iter().map(Trit::from_bool).collect(),
                v1: test.v1.iter().map(Trit::from_bool).collect(),
                v2: test.v2.iter().map(Trit::from_bool).collect(),
            };
            statuses[i] = Some(TpdfStatus::Detected(SubProcedure::FaultSim, cube));
            det_fsim += 1;
            break;
        }
    }
    stats.detected.insert(SubProcedure::FaultSim, det_fsim);
    stats.times.insert(SubProcedure::FaultSim, t0.elapsed());

    // ---- Sub-procedure 4: dynamic-compaction heuristic (§2.3.4, Fig. 2.2).
    let t0 = Instant::now();
    let mut engine = TwoFrame::new(net);
    let mut failure_counts: HashMap<TransitionFault, usize> = HashMap::new();
    let mut det_heur = 0usize;
    for (i, f) in faults.iter().enumerate() {
        if statuses[i].is_some() {
            continue;
        }
        let base = cube_from_inputs(net, necessary[i].as_deref().unwrap_or(&[]));
        if let Some(cube) = heuristic(
            net,
            &mut engine,
            f,
            &base,
            cfg,
            &mut failure_counts,
            &mut rng,
        ) {
            statuses[i] = Some(TpdfStatus::Detected(SubProcedure::Heuristic, cube));
            det_heur += 1;
        }
    }
    stats.detected.insert(SubProcedure::Heuristic, det_heur);
    stats.times.insert(SubProcedure::Heuristic, t0.elapsed());

    // ---- Sub-procedure 5: complete branch-and-bound (§2.3.5, Fig. 2.3).
    let t0 = Instant::now();
    let mut bnb = Podem::new(net, cfg.bnb);
    let mut det_bnb = 0usize;
    let mut undet_bnb = 0usize;
    for (i, f) in faults.iter().enumerate() {
        if statuses[i].is_some() {
            continue;
        }
        let base = cube_from_inputs(net, necessary[i].as_deref().unwrap_or(&[]));
        // Target the historically hardest transition faults first.
        let mut trs = f.transition_faults(net);
        trs.sort_by_key(|t| std::cmp::Reverse(failure_counts.get(t).copied().unwrap_or(0)));
        statuses[i] = Some(match bnb.generate_multi(&base, &trs) {
            AtpgOutcome::Test(cube) => {
                det_bnb += 1;
                TpdfStatus::Detected(SubProcedure::BranchBound, cube)
            }
            AtpgOutcome::Untestable => {
                undet_bnb += 1;
                TpdfStatus::Undetectable(SubProcedure::BranchBound)
            }
            AtpgOutcome::Aborted => TpdfStatus::Aborted,
        });
    }
    stats.detected.insert(SubProcedure::BranchBound, det_bnb);
    stats
        .undetectable
        .insert(SubProcedure::BranchBound, undet_bnb);
    stats.times.insert(SubProcedure::BranchBound, t0.elapsed());

    // ---- SAT fallback: complete time-frame-expansion search for whatever
    // the branch-and-bound aborted on. Every verdict is definite — a model
    // becomes a test, UNSAT is an untestability proof.
    if cfg.sat_fallback {
        let t0 = Instant::now();
        let mut sat = SatBackend::new(net);
        let mut det_sat = 0usize;
        let mut undet_sat = 0usize;
        for (i, f) in faults.iter().enumerate() {
            if !matches!(statuses[i], Some(TpdfStatus::Aborted)) {
                continue;
            }
            statuses[i] = Some(match sat.generate_tpdf(f) {
                AtpgOutcome::Test(cube) => {
                    det_sat += 1;
                    TpdfStatus::Detected(SubProcedure::SatSolver, cube)
                }
                AtpgOutcome::Untestable => {
                    undet_sat += 1;
                    TpdfStatus::Undetectable(SubProcedure::SatSolver)
                }
                AtpgOutcome::Aborted => TpdfStatus::Aborted,
            });
        }
        stats.detected.insert(SubProcedure::SatSolver, det_sat);
        stats
            .undetectable
            .insert(SubProcedure::SatSolver, undet_sat);
        stats.times.insert(SubProcedure::SatSolver, t0.elapsed());
    }

    TpdfReport {
        statuses: statuses.into_iter().map(Option::unwrap).collect(),
        stats,
    }
}

/// The Fig. 2.2 heuristic for one fault: repeatedly pick the hardest
/// undetected, unused transition fault as the primary target, then extend
/// the test over the remaining faults without backtracking across them.
fn heuristic(
    net: &Netlist,
    engine: &mut TwoFrame<'_>,
    fault: &TransitionPathDelayFault,
    base: &TestCube,
    cfg: &TpdfConfig,
    failure_counts: &mut HashMap<TransitionFault, usize>,
    rng: &mut Rng,
) -> Option<TestCube> {
    let deadline = Instant::now() + cfg.heuristic_time_limit;
    let trs = fault.transition_faults(net);
    let mut used: HashSet<TransitionFault> = HashSet::new();
    let mut podem = Podem::new(net, cfg.tf_podem);

    while Instant::now() < deadline {
        // Primary target: hardest (highest failures) unused fault; random
        // tie-break.
        let already = detected_under(engine, base, &trs);
        let candidates: Vec<&TransitionFault> = trs
            .iter()
            .zip(&already)
            .filter(|(t, det)| !**det && !used.contains(*t))
            .map(|(t, _)| t)
            .collect();
        let primary = match candidates.as_slice() {
            [] => return None, // every fault used (or already detected alone)
            cands => {
                let maxf = cands
                    .iter()
                    .map(|t| failure_counts.get(t).copied().unwrap_or(0))
                    .max()
                    .unwrap_or(0);
                let top: Vec<&&TransitionFault> = cands
                    .iter()
                    .filter(|t| failure_counts.get(**t).copied().unwrap_or(0) == maxf)
                    .collect();
                **top[rng.below(top.len())]
            }
        };
        let mut cube = match podem.generate_from(base, &primary) {
            AtpgOutcome::Test(c) => c,
            _ => return None, // primary unreachable even alone: give up here
        };

        // Secondary targets: remaining faults, hardest first.
        let mut first_secondary = true;
        loop {
            if Instant::now() >= deadline {
                return None;
            }
            let det = detected_under(engine, &cube, &trs);
            if det.iter().all(|&d| d) {
                return Some(cube);
            }
            let remaining: Vec<&TransitionFault> = trs
                .iter()
                .zip(&det)
                .filter(|(_, d)| !**d)
                .map(|(t, _)| t)
                .collect();
            let maxf = remaining
                .iter()
                .map(|t| failure_counts.get(t).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            let top: Vec<&&TransitionFault> = remaining
                .iter()
                .filter(|t| failure_counts.get(**t).copied().unwrap_or(0) == maxf)
                .collect();
            let secondary = **top[rng.below(top.len())];
            match podem.generate_from(&cube, &secondary) {
                AtpgOutcome::Test(extended) => {
                    cube = extended;
                    first_secondary = false;
                }
                _ => {
                    *failure_counts.entry(secondary).or_insert(0) += 1;
                    if first_secondary {
                        // The primary's detection blocks this one: mark the
                        // primary used, discard, restart.
                        used.insert(primary);
                    }
                    // Either way this round cannot succeed; restart with the
                    // updated failure statistics.
                    break;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_fault::path::{enumerate_paths, tpdf_list};
    use fbt_netlist::s27;

    fn quick_cfg() -> TpdfConfig {
        TpdfConfig {
            tf_podem: PodemConfig {
                backtrack_limit: 2000,
                time_limit: Duration::from_secs(5),
            },
            heuristic_time_limit: Duration::from_millis(300),
            bnb: PodemConfig {
                backtrack_limit: 100_000,
                time_limit: Duration::from_secs(10),
            },
            sat_fallback: true,
            preflight: true,
            seed: 7,
        }
    }

    #[test]
    fn s27_fault_totals() {
        // Table 2.1: s27 has 56 transition path delay faults (28 paths).
        // The paper reports 25 detected / 31 undetectable; exhaustive search
        // under the Chapter-1 detection semantics yields 23 / 33 (see the
        // `exhaustive_s27` integration test), which is what the pipeline
        // must reproduce with zero aborts.
        let net = s27();
        let paths = enumerate_paths(&net, usize::MAX);
        let faults = tpdf_list(&paths);
        assert_eq!(faults.len(), 56);
        let report = run_pipeline(&net, &faults, &quick_cfg());
        assert_eq!(report.num_aborted(), 0, "nothing should abort on s27");
        assert_eq!(
            (report.num_detected(), report.num_undetectable()),
            (23, 33),
            "exhaustively verified totals for s27"
        );
    }

    #[test]
    fn detected_faults_have_working_tests() {
        let net = s27();
        let faults = tpdf_list(&enumerate_paths(&net, usize::MAX));
        let report = run_pipeline(&net, &faults, &quick_cfg());
        let mut engine = TwoFrame::new(&net);
        for (f, s) in faults.iter().zip(&report.statuses) {
            if let TpdfStatus::Detected(_, cube) = s {
                let trs = f.transition_faults(&net);
                let det = detected_under(&mut engine, cube, &trs);
                assert!(
                    det.iter().all(|&d| d),
                    "test for {} does not detect all its transition faults",
                    f.path.display(&net)
                );
            }
        }
    }

    #[test]
    fn subprocedure_counts_sum_up() {
        let net = s27();
        let faults = tpdf_list(&enumerate_paths(&net, usize::MAX));
        let report = run_pipeline(&net, &faults, &quick_cfg());
        let det_sum: usize = report.stats.detected.values().sum();
        let undet_sum: usize = report.stats.undetectable.values().sum();
        assert_eq!(det_sum, report.num_detected());
        assert_eq!(undet_sum, report.num_undetectable());
    }

    #[test]
    fn preflight_decides_constant_line_faults() {
        // Paths through a structurally constant gate are untestable; the
        // pre-flight must decide them without search and without changing
        // any other verdict.
        let mut b = fbt_netlist::NetlistBuilder::new("pf");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate(GateKind::Not, "na", &["a"]).unwrap();
        b.gate(GateKind::And, "k0", &["a", "na"]).unwrap(); // constant 0
        b.gate(GateKind::Or, "y", &["k0", "c"]).unwrap();
        b.output("y").unwrap();
        let net = b.finish().unwrap();

        let faults = tpdf_list(&enumerate_paths(&net, usize::MAX));
        let with = run_pipeline(&net, &faults, &quick_cfg());
        let decided = with
            .stats
            .undetectable
            .get(&SubProcedure::Preflight)
            .copied()
            .unwrap_or(0);
        assert!(decided >= 1, "paths through k0 must be decided up front");

        let mut cfg = quick_cfg();
        cfg.preflight = false;
        let without = run_pipeline(&net, &faults, &cfg);
        for (x, y) in with.statuses.iter().zip(&without.statuses) {
            assert_eq!(x.is_detected(), y.is_detected());
            assert_eq!(x.is_undetectable(), y.is_undetectable());
        }
    }

    #[test]
    fn pipeline_deterministic() {
        let net = s27();
        let faults = tpdf_list(&enumerate_paths(&net, usize::MAX));
        let a = run_pipeline(&net, &faults, &quick_cfg());
        let b = run_pipeline(&net, &faults, &quick_cfg());
        for (x, y) in a.statuses.iter().zip(&b.statuses) {
            assert_eq!(
                std::mem::discriminant(x),
                std::mem::discriminant(y),
                "verdicts differ between runs"
            );
        }
    }
}
