//! Forward/backward implication over the two-frame model, with a trail for
//! cheap rollback. This is the machinery behind necessary assignments
//! (paper §2.3.2 and §3.2).

use fbt_netlist::{GateKind, Netlist, NodeId};
use fbt_sim::{tv, Trit};

use crate::frames::{var_of, var_parts, Frame};

/// A contradiction between implied values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// The variable on which opposing values met.
    pub var: usize,
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conflicting implications on variable {}", self.var)
    }
}

impl std::error::Error for Conflict {}

/// A two-frame implication engine.
///
/// [`Implicator::assign`] sets a variable and propagates *direct
/// implications* to a fixpoint: forward gate evaluation, backward
/// justification when only one way remains, and the cross-frame equality
/// between a frame-2 flip-flop and its frame-1 D driver. The trail records
/// every assignment so that [`Implicator::rollback`] can restore any earlier
/// [`Implicator::checkpoint`].
///
/// # Example
///
/// ```
/// use fbt_atpg::implic::Implicator;
/// use fbt_atpg::{var_of, Frame};
/// use fbt_sim::Trit;
///
/// let net = fbt_netlist::s27();
/// let n = net.num_nodes();
/// let mut imp = Implicator::new(&net);
/// let g14 = net.find("G14").unwrap(); // G14 = NOT(G0)
/// let g0 = net.find("G0").unwrap();
/// imp.assign(var_of(n, Frame::First, g14), true).unwrap();
/// assert_eq!(imp.value(var_of(n, Frame::First, g0)), Trit::Zero);
/// ```
#[derive(Debug, Clone)]
pub struct Implicator<'a> {
    net: &'a Netlist,
    n: usize,
    vals: Vec<Trit>,
    trail: Vec<usize>,
    /// For each node: the flip-flops whose D input it drives.
    drives_dff: Vec<Vec<NodeId>>,
}

impl<'a> Implicator<'a> {
    /// Create an all-X engine.
    pub fn new(net: &'a Netlist) -> Self {
        let n = net.num_nodes();
        let mut drives_dff = vec![Vec::new(); n];
        for &d in net.dffs() {
            drives_dff[net.node(d).fanins()[0].index()].push(d);
        }
        Implicator {
            net,
            n,
            vals: vec![Trit::X; 2 * n],
            trail: Vec::new(),
            drives_dff,
        }
    }

    /// Current value of a variable.
    #[inline]
    pub fn value(&self, var: usize) -> Trit {
        self.vals[var]
    }

    /// The number of assignments on the trail (a checkpoint token).
    pub fn checkpoint(&self) -> usize {
        self.trail.len()
    }

    /// Undo all assignments made after `mark`.
    pub fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().expect("trail non-empty");
            self.vals[var] = Trit::X;
        }
    }

    /// The assignments made since `mark`, as `(var, value)` pairs.
    pub fn since(&self, mark: usize) -> Vec<(usize, bool)> {
        self.trail[mark..]
            .iter()
            .map(|&v| (v, self.vals[v] == Trit::One))
            .collect()
    }

    /// Assign `var = value` and propagate to a fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`Conflict`] if the assignment (or anything it implies)
    /// contradicts an existing value. The engine state is left as-is on
    /// conflict; use [`Implicator::rollback`] to recover.
    pub fn assign(&mut self, var: usize, value: bool) -> Result<(), Conflict> {
        let mut queue: Vec<usize> = Vec::new();
        self.post(var, Trit::from_bool(value), &mut queue)?;
        while let Some(v) = queue.pop() {
            self.propagate_from(v, &mut queue)?;
        }
        Ok(())
    }

    /// Record a value; push the variable for propagation.
    fn post(&mut self, var: usize, value: Trit, queue: &mut Vec<usize>) -> Result<(), Conflict> {
        debug_assert!(value.is_specified());
        match self.vals[var] {
            Trit::X => {
                self.vals[var] = value;
                self.trail.push(var);
                queue.push(var);
                Ok(())
            }
            existing if existing == value => Ok(()),
            _ => Err(Conflict { var }),
        }
    }

    fn frame_val(&self, frame: Frame, node: NodeId) -> Trit {
        self.vals[var_of(self.n, frame, node)]
    }

    /// Propagate the consequences of `var` being specified.
    fn propagate_from(&mut self, var: usize, queue: &mut Vec<usize>) -> Result<(), Conflict> {
        let (frame, node) = var_parts(self.n, var);
        let value = self.vals[var];

        // Cross-frame flip-flop equality.
        if frame == Frame::First {
            for &d in &self.drives_dff[node.index()].clone() {
                self.post(var_of(self.n, Frame::Second, d), value, queue)?;
            }
        }
        if frame == Frame::Second && self.net.node(node).kind() == GateKind::Dff {
            let drv = self.net.node(node).fanins()[0];
            self.post(var_of(self.n, Frame::First, drv), value, queue)?;
        }

        // Forward through fanout gates in the same frame.
        for &fo in self.net.node(node).fanouts() {
            let fo_node = self.net.node(fo);
            if fo_node.kind().is_source() {
                continue; // DFF consumers handled by the equality above
            }
            let out = tv::eval_gate_tv(
                fo_node.kind(),
                fo_node.fanins().iter().map(|f| self.frame_val(frame, *f)),
            );
            if out.is_specified() {
                self.post(var_of(self.n, frame, fo), out, queue)?;
            }
            // The fanout gate's output may already be specified: new input
            // information can force its remaining inputs.
            self.justify(frame, fo, queue)?;
        }

        // Backward: justify this gate itself.
        self.justify(frame, node, queue)?;
        Ok(())
    }

    /// Backward justification: when a gate's output value leaves only one
    /// way to assign its remaining inputs, make those assignments.
    fn justify(
        &mut self,
        frame: Frame,
        node: NodeId,
        queue: &mut Vec<usize>,
    ) -> Result<(), Conflict> {
        let nd = self.net.node(node);
        let kind = nd.kind();
        if kind.is_source() {
            return Ok(());
        }
        let out = self.frame_val(frame, node);
        let Some(out) = out.to_bool() else {
            return Ok(());
        };
        let fanins: Vec<NodeId> = nd.fanins().to_vec();
        match kind {
            GateKind::Not => {
                self.post(
                    var_of(self.n, frame, fanins[0]),
                    Trit::from_bool(!out),
                    queue,
                )?;
            }
            GateKind::Buf => {
                self.post(
                    var_of(self.n, frame, fanins[0]),
                    Trit::from_bool(out),
                    queue,
                )?;
            }
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let inverted = kind.inverts();
                let conj = matches!(kind, GateKind::And | GateKind::Nand);
                // Effective output of the underlying AND/OR.
                let eff = out ^ inverted;
                let noncontrolling = conj; // AND: 1, OR: 0
                if eff == noncontrolling {
                    // All inputs take the non-controlling value.
                    for f in fanins {
                        self.post(
                            var_of(self.n, frame, f),
                            Trit::from_bool(noncontrolling),
                            queue,
                        )?;
                    }
                } else {
                    // Some input is controlling: force it only when it is
                    // the last unspecified one and all others are
                    // non-controlling.
                    let mut unspec = None;
                    let mut nc_count = 0usize;
                    for &f in &fanins {
                        match self.frame_val(frame, f).to_bool() {
                            None => {
                                if unspec.replace(f).is_some() {
                                    return Ok(()); // two unknowns: nothing forced
                                }
                            }
                            Some(v) if v == noncontrolling => nc_count += 1,
                            Some(_) => return Ok(()), // already controlled
                        }
                    }
                    if let Some(f) = unspec {
                        if nc_count == fanins.len() - 1 {
                            self.post(
                                var_of(self.n, frame, f),
                                Trit::from_bool(!noncontrolling),
                                queue,
                            )?;
                        }
                    }
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut unspec = None;
                let mut parity = false;
                for &f in &fanins {
                    match self.frame_val(frame, f).to_bool() {
                        None => {
                            if unspec.replace(f).is_some() {
                                return Ok(());
                            }
                        }
                        Some(v) => parity ^= v,
                    }
                }
                if let Some(f) = unspec {
                    let invert = kind == GateKind::Xnor;
                    self.post(
                        var_of(self.n, frame, f),
                        Trit::from_bool(out ^ parity ^ invert),
                        queue,
                    )?;
                }
            }
            GateKind::Input | GateKind::Dff => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    fn v(net: &Netlist, name: &str) -> NodeId {
        net.find(name).unwrap()
    }

    #[test]
    fn forward_implication() {
        let net = s27();
        let n = net.num_nodes();
        let mut imp = Implicator::new(&net);
        // G8 = AND(G14, G6): G14 = 0 forces G8 = 0.
        imp.assign(var_of(n, Frame::First, v(&net, "G14")), false)
            .unwrap();
        assert_eq!(
            imp.value(var_of(n, Frame::First, v(&net, "G8"))),
            Trit::Zero
        );
        // And backward through the NOT: G14 = 0 -> G0 = 1.
        assert_eq!(imp.value(var_of(n, Frame::First, v(&net, "G0"))), Trit::One);
    }

    #[test]
    fn backward_all_inputs_forced() {
        let net = s27();
        let n = net.num_nodes();
        let mut imp = Implicator::new(&net);
        // G9 = NAND(G16, G15) = 0 forces G16 = G15 = 1.
        imp.assign(var_of(n, Frame::First, v(&net, "G9")), false)
            .unwrap();
        assert_eq!(
            imp.value(var_of(n, Frame::First, v(&net, "G16"))),
            Trit::One
        );
        assert_eq!(
            imp.value(var_of(n, Frame::First, v(&net, "G15"))),
            Trit::One
        );
    }

    #[test]
    fn last_input_forced() {
        let net = s27();
        let n = net.num_nodes();
        let mut imp = Implicator::new(&net);
        // G8 = AND(G14, G6) = 1 with nothing else -> both inputs 1.
        imp.assign(var_of(n, Frame::First, v(&net, "G8")), true)
            .unwrap();
        assert_eq!(
            imp.value(var_of(n, Frame::First, v(&net, "G14"))),
            Trit::One
        );
        assert_eq!(imp.value(var_of(n, Frame::First, v(&net, "G6"))), Trit::One);
        // G14 = NOT(G0) = 1 -> G0 = 0.
        assert_eq!(
            imp.value(var_of(n, Frame::First, v(&net, "G0"))),
            Trit::Zero
        );
    }

    #[test]
    fn cross_frame_link_both_directions() {
        let net = s27();
        let n = net.num_nodes();
        // Frame-2 G5 (DFF) = 1 -> frame-1 G10 = 1 (its D driver).
        let mut imp = Implicator::new(&net);
        imp.assign(var_of(n, Frame::Second, v(&net, "G5")), true)
            .unwrap();
        assert_eq!(
            imp.value(var_of(n, Frame::First, v(&net, "G10"))),
            Trit::One
        );
        // Reverse: frame-1 G10 = 0 -> frame-2 G5 = 0.
        let mut imp = Implicator::new(&net);
        imp.assign(var_of(n, Frame::First, v(&net, "G10")), false)
            .unwrap();
        assert_eq!(
            imp.value(var_of(n, Frame::Second, v(&net, "G5"))),
            Trit::Zero
        );
    }

    #[test]
    fn conflict_detected_and_rollback_restores() {
        let net = s27();
        let n = net.num_nodes();
        let mut imp = Implicator::new(&net);
        let mark = imp.checkpoint();
        imp.assign(var_of(n, Frame::First, v(&net, "G14")), false)
            .unwrap();
        // G14 = NOT(G0), so G0 = 1 is implied; asserting G0 = 0 conflicts.
        let r = imp.assign(var_of(n, Frame::First, v(&net, "G0")), false);
        assert!(r.is_err());
        imp.rollback(mark);
        for var in 0..2 * n {
            assert_eq!(imp.value(var), Trit::X, "var {var} not rolled back");
        }
    }

    #[test]
    fn implications_agree_with_three_valued_simulation() {
        // Whatever the implicator derives forward must match tv simulation
        // on fully specified source assignments.
        let net = s27();
        let n = net.num_nodes();
        for combo in 0..128u32 {
            let mut imp = Implicator::new(&net);
            let mut ok = true;
            for (b, &pi) in net.inputs().iter().enumerate() {
                ok &= imp
                    .assign(var_of(n, Frame::First, pi), (combo >> b) & 1 == 1)
                    .is_ok();
            }
            for (b, &ff) in net.dffs().iter().enumerate() {
                ok &= imp
                    .assign(var_of(n, Frame::First, ff), (combo >> (4 + b)) & 1 == 1)
                    .is_ok();
            }
            assert!(ok, "no conflicts on consistent inputs");
            let pi_t: Vec<Trit> = (0..4)
                .map(|b| Trit::from_bool((combo >> b) & 1 == 1))
                .collect();
            let st_t: Vec<Trit> = (0..3)
                .map(|b| Trit::from_bool((combo >> (4 + b)) & 1 == 1))
                .collect();
            let (vals, _) = fbt_sim::tv::simulate_frame_tv(&net, &pi_t, &st_t);
            for id in net.node_ids() {
                assert_eq!(
                    imp.value(var_of(n, Frame::First, id)),
                    vals[id.index()],
                    "node {}",
                    net.node_name(id)
                );
            }
        }
    }

    #[test]
    fn since_reports_new_assignments() {
        let net = s27();
        let n = net.num_nodes();
        let mut imp = Implicator::new(&net);
        let mark = imp.checkpoint();
        imp.assign(var_of(n, Frame::First, v(&net, "G8")), true)
            .unwrap();
        let added = imp.since(mark);
        assert!(!added.is_empty());
        assert!(added
            .iter()
            .any(|&(var, val)| { var == var_of(n, Frame::First, v(&net, "G14")) && val }));
    }
}
