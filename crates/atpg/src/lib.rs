#![warn(missing_docs)]

//! Deterministic broadside test generation (paper Chapters 2 and 3
//! substrate).
//!
//! Everything here works on the *two-frame model* of a broadside test: the
//! combinational logic is conceptually unrolled twice, with the second
//! frame's present state tied to the first frame's next state (paper §1.3).
//!
//! * [`frames`] — the two-frame value model: three-valued good simulation,
//!   per-fault faulty-plane simulation, D-frontier objectives;
//! * [`TestCube`] — a partially specified broadside test `<s1, v1, v2>`;
//! * [`implic`] — a forward/backward implication engine with a trail, used
//!   to compute necessary assignments;
//! * [`necessary`] — necessary assignments and *input necessary assignments*
//!   for transition faults and transition path delay faults (§2.3.2, §3.2);
//! * [`podem`] — a PODEM-style deterministic test generator for transition
//!   faults under broadside tests (§2.3.1), supporting a fixed base cube so
//!   that tests can be *extended* fault after fault;
//! * [`tpdf`] — the five-sub-procedure pipeline for transition path delay
//!   faults: transition-fault test generation, preprocessing, fault
//!   simulation, dynamic-compaction heuristic, and the complete
//!   branch-and-bound (§2.3, Figs. 2.2 / 2.3);
//! * [`sat_backend`] — a complete SAT-based generator over `fbt-sat`'s
//!   time-frame-expansion encoding, used as the pipeline's fallback for
//!   aborted faults and as the source of UNSAT *untestability proofs*.

pub mod compaction;
pub mod frames;
pub mod implic;
pub mod necessary;
pub mod podem;
pub mod sat_backend;
mod test_cube;
pub mod tpdf;

pub use frames::{var_of, Frame, TwoFrame};
pub use podem::{AtpgOutcome, Podem, PodemConfig};
pub use sat_backend::{SatBackend, SatBackendStats};
pub use test_cube::TestCube;
