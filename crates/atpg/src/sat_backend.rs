//! SAT-backed test generation: complete search with untestability proofs.
//!
//! [`SatBackend`] answers the same queries as [`crate::Podem`] — find a
//! broadside test for a transition fault or a transition path delay fault —
//! but through `fbt-sat`'s time-frame-expansion encoding and CDCL solver.
//! Where the structural search can abort on its backtrack or time limits,
//! the SAT route terminates with a definite verdict: a model (turned into a
//! fully specified [`TestCube`]) or an UNSAT **untestability proof**. The
//! TPDF pipeline uses it as the final fallback for faults the complete
//! branch-and-bound aborted on, and surfaces the proofs under
//! [`crate::tpdf::SubProcedure::SatSolver`] in its statistics.

use fbt_fault::{TransitionFault, TransitionPathDelayFault};
use fbt_netlist::Netlist;
use fbt_sat::{BroadsideEncoding, DetectionVerdict, SolverStats};
use fbt_sim::Trit;

use crate::podem::AtpgOutcome;
use crate::TestCube;

/// Accounting across a backend's queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatBackendStats {
    /// Queries answered.
    pub queries: usize,
    /// Tests generated (SAT verdicts).
    pub tests: usize,
    /// Untestability proofs (UNSAT verdicts).
    pub untestable_proofs: usize,
    /// Queries that exhausted the conflict budget.
    pub aborted: usize,
    /// Accumulated solver search statistics.
    pub solver: SolverStats,
}

/// SAT-based test generator over a free scan-in state.
#[derive(Debug)]
pub struct SatBackend<'a> {
    net: &'a Netlist,
    conflict_limit: Option<u64>,
    /// Accounting, accumulated over all queries.
    pub stats: SatBackendStats,
}

impl<'a> SatBackend<'a> {
    /// A backend with no conflict budget: every query terminates with a
    /// test or an untestability proof.
    pub fn new(net: &'a Netlist) -> Self {
        SatBackend {
            net,
            conflict_limit: None,
            stats: SatBackendStats::default(),
        }
    }

    /// Bound each query's search; exhausting the budget yields
    /// [`AtpgOutcome::Aborted`] instead of a verdict.
    pub fn with_conflict_limit(net: &'a Netlist, limit: u64) -> Self {
        SatBackend {
            net,
            conflict_limit: Some(limit),
            stats: SatBackendStats::default(),
        }
    }

    /// Generate a broadside test for a transition fault, or prove it
    /// untestable.
    pub fn generate(&mut self, fault: &TransitionFault) -> AtpgOutcome {
        let mut enc = BroadsideEncoding::new(self.net);
        enc.require_detection(fault);
        self.finish(enc)
    }

    /// Generate a single broadside test detecting every transition fault
    /// along a path (the TPDF criterion), or prove none exists.
    pub fn generate_tpdf(&mut self, fault: &TransitionPathDelayFault) -> AtpgOutcome {
        let mut enc = BroadsideEncoding::new(self.net);
        enc.require_tpdf_detection(fault);
        self.finish(enc)
    }

    fn finish(&mut self, enc: BroadsideEncoding<'_>) -> AtpgOutcome {
        let (verdict, stats) = enc.solve(self.conflict_limit);
        self.stats.queries += 1;
        self.stats.solver.absorb(&stats);
        match verdict {
            DetectionVerdict::Test(t) => {
                self.stats.tests += 1;
                AtpgOutcome::Test(TestCube {
                    s1: t.scan_in.iter().map(Trit::from_bool).collect(),
                    v1: t.v1.iter().map(Trit::from_bool).collect(),
                    v2: t.v2.iter().map(Trit::from_bool).collect(),
                })
            }
            DetectionVerdict::Untestable => {
                self.stats.untestable_proofs += 1;
                AtpgOutcome::Untestable
            }
            DetectionVerdict::Unknown => {
                self.stats.aborted += 1;
                AtpgOutcome::Aborted
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::podem::{Podem, PodemConfig};
    use fbt_fault::path::{enumerate_paths, tpdf_list};
    use fbt_fault::{all_transition_faults, FaultSimEngine, SerialSim};
    use fbt_netlist::rng::Rng;
    use fbt_netlist::s27;
    use std::time::Duration;

    #[test]
    fn sat_and_podem_verdicts_agree_on_s27() {
        let net = s27();
        let mut sat = SatBackend::new(&net);
        let mut podem = Podem::new(
            &net,
            PodemConfig {
                backtrack_limit: 100_000,
                time_limit: Duration::from_secs(20),
            },
        );
        let mut sim = SerialSim::new(&net);
        let mut rng = Rng::new(3);
        for fault in all_transition_faults(&net) {
            let sat_outcome = sat.generate(&fault);
            match &sat_outcome {
                AtpgOutcome::Test(cube) => {
                    let t = cube.fill_random(&mut rng);
                    assert!(sim.detects(&t, &fault), "SAT test must detect {fault}");
                }
                AtpgOutcome::Untestable => {
                    assert!(
                        !matches!(podem.generate(&fault), AtpgOutcome::Test(_)),
                        "SAT proved {fault} untestable but PODEM found a test"
                    );
                }
                AtpgOutcome::Aborted => panic!("no conflict limit was set"),
            }
            // Where PODEM reaches a definite verdict, it must match.
            match podem.generate(&fault) {
                AtpgOutcome::Test(_) => {
                    assert!(matches!(sat_outcome, AtpgOutcome::Test(_)), "{fault}")
                }
                AtpgOutcome::Untestable => {
                    assert!(matches!(sat_outcome, AtpgOutcome::Untestable), "{fault}")
                }
                AtpgOutcome::Aborted => {}
            }
        }
        assert_eq!(sat.stats.queries, 2 * net.num_nodes());
        assert_eq!(
            sat.stats.tests + sat.stats.untestable_proofs,
            sat.stats.queries
        );
        assert_eq!(sat.stats.aborted, 0);
    }

    #[test]
    fn tpdf_generation_matches_known_counts() {
        let net = s27();
        let faults = tpdf_list(&enumerate_paths(&net, usize::MAX));
        let mut sat = SatBackend::new(&net);
        let mut detected = 0;
        let mut untestable = 0;
        for f in &faults {
            match sat.generate_tpdf(f) {
                AtpgOutcome::Test(_) => detected += 1,
                AtpgOutcome::Untestable => untestable += 1,
                AtpgOutcome::Aborted => panic!("no conflict limit was set"),
            }
        }
        assert_eq!((detected, untestable), (23, 33), "Table 2.1 semantics");
    }

    #[test]
    fn conflict_limit_can_abort() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let mut sat = SatBackend::with_conflict_limit(&net, 1);
        for fault in &faults {
            // With a one-conflict budget each query either ends trivially or
            // aborts; it must never return a wrong verdict.
            match sat.generate(fault) {
                AtpgOutcome::Test(cube) => {
                    let t = cube.fill(false);
                    assert!(SerialSim::new(&net).detects(&t, fault));
                }
                AtpgOutcome::Untestable | AtpgOutcome::Aborted => {}
            }
        }
        assert_eq!(sat.stats.queries, faults.len());
    }

    #[test]
    fn backend_is_deterministic() {
        let net = s27();
        let run = || {
            let mut sat = SatBackend::new(&net);
            for fault in all_transition_faults(&net) {
                sat.generate(&fault);
            }
            sat.stats
        };
        assert_eq!(run(), run(), "identical queries must give identical stats");
    }
}
