//! Partially specified broadside tests.

use fbt_fault::BroadsideTest;
use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;
use fbt_sim::{Bits, Trit};

/// A partially specified broadside test `<s1, v1, v2>` over three-valued
/// entries (the second-pattern state is implied and never stored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCube {
    /// Scan-in state cube.
    pub s1: Vec<Trit>,
    /// First-pattern primary-input cube.
    pub v1: Vec<Trit>,
    /// Second-pattern primary-input cube.
    pub v2: Vec<Trit>,
}

impl TestCube {
    /// The fully unspecified cube for a circuit.
    pub fn unspecified(net: &Netlist) -> Self {
        TestCube {
            s1: vec![Trit::X; net.num_dffs()],
            v1: vec![Trit::X; net.num_inputs()],
            v2: vec![Trit::X; net.num_inputs()],
        }
    }

    /// Number of specified entries.
    pub fn specified(&self) -> usize {
        self.s1
            .iter()
            .chain(&self.v1)
            .chain(&self.v2)
            .filter(|t| t.is_specified())
            .count()
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.s1.len() + self.v1.len() + self.v2.len()
    }

    /// Whether the cube has no entries (degenerate circuit).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fill the unspecified entries with `value`.
    pub fn fill(&self, value: bool) -> BroadsideTest {
        let f = |v: &[Trit]| -> Bits { v.iter().map(|t| t.to_bool().unwrap_or(value)).collect() };
        BroadsideTest::new(f(&self.s1), f(&self.v1), f(&self.v2))
    }

    /// Fill the unspecified entries pseudo-randomly.
    pub fn fill_random(&self, rng: &mut Rng) -> BroadsideTest {
        let mut f = |v: &[Trit]| -> Bits {
            v.iter()
                .map(|t| t.to_bool().unwrap_or_else(|| rng.bit()))
                .collect()
        };
        let s1 = f(&self.s1);
        let v1 = f(&self.v1);
        let v2 = f(&self.v2);
        BroadsideTest::new(s1, v1, v2)
    }

    /// Whether `other` is compatible with `self` (no opposing specified
    /// entries).
    pub fn compatible(&self, other: &TestCube) -> bool {
        let ok = |a: &[Trit], b: &[Trit]| a.iter().zip(b).all(|(x, y)| x.compatible(*y));
        ok(&self.s1, &other.s1) && ok(&self.v1, &other.v1) && ok(&self.v2, &other.v2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    #[test]
    fn fill_respects_specified_bits() {
        let net = s27();
        let mut c = TestCube::unspecified(&net);
        c.s1[1] = Trit::One;
        c.v1[0] = Trit::Zero;
        c.v2[3] = Trit::One;
        let t = c.fill(false);
        assert!(t.scan_in.get(1));
        assert!(!t.v1.get(0));
        assert!(t.v2.get(3));
        assert!(!t.v2.get(0)); // filled with 0
        assert_eq!(c.specified(), 3);
        assert_eq!(c.len(), 11);
    }

    #[test]
    fn random_fill_is_deterministic_per_seed() {
        let net = s27();
        let c = TestCube::unspecified(&net);
        let mut r1 = Rng::new(5);
        let mut r2 = Rng::new(5);
        assert_eq!(c.fill_random(&mut r1), c.fill_random(&mut r2));
    }

    #[test]
    fn compatibility() {
        let net = s27();
        let mut a = TestCube::unspecified(&net);
        let mut b = TestCube::unspecified(&net);
        a.v1[2] = Trit::One;
        b.v1[2] = Trit::One;
        assert!(a.compatible(&b));
        b.v1[2] = Trit::Zero;
        assert!(!a.compatible(&b));
        b.v1[2] = Trit::X;
        assert!(a.compatible(&b));
    }
}
