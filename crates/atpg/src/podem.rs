//! PODEM-style deterministic broadside test generation for transition
//! faults (paper §2.3.1), generalized to multiple simultaneous targets for
//! the branch-and-bound procedure of §2.3.5.

use std::time::{Duration, Instant};

use fbt_fault::TransitionFault;
use fbt_netlist::Netlist;
use fbt_sim::Trit;

use crate::frames::{FaultStatus, TwoFrame};
use crate::TestCube;

/// Search limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodemConfig {
    /// Maximum number of backtracks before aborting (128 in the paper's
    /// experiments).
    pub backtrack_limit: usize,
    /// Wall-clock limit for one generation call.
    pub time_limit: Duration,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 128,
            time_limit: Duration::from_secs(60),
        }
    }
}

/// Outcome of a generation attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtpgOutcome {
    /// A (partially specified) test detecting all targets.
    Test(TestCube),
    /// Proven undetectable (under the base cube, if one was given) —
    /// the search space was exhausted.
    Untestable,
    /// A limit was hit before a decision was reached.
    Aborted,
}

impl AtpgOutcome {
    /// The test, if one was found.
    pub fn test(&self) -> Option<&TestCube> {
        match self {
            AtpgOutcome::Test(t) => Some(t),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    var: usize,
    value: bool,
    flipped: bool,
}

/// The deterministic test generator.
#[derive(Debug)]
pub struct Podem<'a> {
    engine: TwoFrame<'a>,
    cfg: PodemConfig,
    /// Backtracks consumed by the last call.
    pub last_backtracks: usize,
}

impl<'a> Podem<'a> {
    /// Create a generator for a circuit.
    pub fn new(net: &'a Netlist, cfg: PodemConfig) -> Self {
        Podem {
            engine: TwoFrame::new(net),
            cfg,
            last_backtracks: 0,
        }
    }

    /// Generate a broadside test for a single transition fault.
    ///
    /// # Example
    ///
    /// ```
    /// use fbt_atpg::{Podem, PodemConfig};
    /// use fbt_fault::{Transition, TransitionFault};
    ///
    /// let net = fbt_netlist::s27();
    /// let mut podem = Podem::new(&net, PodemConfig::default());
    /// let g8 = net.find("G8").unwrap();
    /// let fault = TransitionFault::new(g8, Transition::Rise);
    /// let outcome = podem.generate(&fault);
    /// assert!(outcome.test().is_some(), "G8 rising is testable");
    /// ```
    pub fn generate(&mut self, fault: &TransitionFault) -> AtpgOutcome {
        let base = TestCube::unspecified(self.engine.net());
        self.generate_multi(&base, std::slice::from_ref(fault))
    }

    /// Generate a test for a single fault, extending a fixed base cube
    /// (dynamic-compaction style: the base's specified bits are never
    /// backtracked).
    pub fn generate_from(&mut self, base: &TestCube, fault: &TransitionFault) -> AtpgOutcome {
        self.generate_multi(base, std::slice::from_ref(fault))
    }

    /// Generate a test detecting *all* of `targets` simultaneously, with
    /// chronological backtracking across targets — the complete
    /// branch-and-bound search of §2.3.5 when `targets` is the transition
    /// fault set of a transition path delay fault.
    ///
    /// `Untestable` means no completion of `base` detects all targets; with
    /// an unspecified base this proves the multi-target fault undetectable.
    pub fn generate_multi(&mut self, base: &TestCube, targets: &[TransitionFault]) -> AtpgOutcome {
        assert!(!targets.is_empty(), "need at least one target");
        let start = Instant::now();
        self.last_backtracks = 0;
        self.engine.load_cube(base);
        let mut decisions: Vec<Decision> = Vec::new();

        loop {
            if start.elapsed() > self.cfg.time_limit {
                return AtpgOutcome::Aborted;
            }
            self.engine.forward();

            // Validity check over all targets (paper Fig. 2.3): if any
            // target has become impossible, backtrack.
            let mut objective = None;
            let mut impossible = false;
            let mut all_detected = true;
            for t in targets {
                match self.engine.fault_status(t) {
                    FaultStatus::Detected => {}
                    FaultStatus::Impossible => {
                        impossible = true;
                        all_detected = false;
                        break;
                    }
                    FaultStatus::Possible(obj) => {
                        all_detected = false;
                        if objective.is_none() {
                            objective = Some(obj);
                        }
                    }
                }
            }
            if all_detected {
                return AtpgOutcome::Test(self.engine.cube());
            }

            let next = if impossible {
                None
            } else {
                objective.and_then(|obj| self.engine.backtrace(obj))
            };

            match next {
                Some((var, value)) => {
                    decisions.push(Decision {
                        var,
                        value,
                        flipped: false,
                    });
                    self.engine.set_input(var, Trit::from_bool(value));
                }
                None => {
                    // Backtrack to the most recent unflipped decision.
                    self.last_backtracks += 1;
                    if self.last_backtracks > self.cfg.backtrack_limit {
                        return AtpgOutcome::Aborted;
                    }
                    loop {
                        match decisions.pop() {
                            Some(d) if !d.flipped => {
                                decisions.push(Decision {
                                    var: d.var,
                                    value: !d.value,
                                    flipped: true,
                                });
                                self.engine.set_input(d.var, Trit::from_bool(!d.value));
                                break;
                            }
                            Some(d) => {
                                self.engine.set_input(d.var, Trit::X);
                            }
                            None => return AtpgOutcome::Untestable,
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_fault::{all_transition_faults, Transition};
    use fbt_fault::{FaultSimEngine, SerialSim};
    use fbt_netlist::rng::Rng;
    use fbt_netlist::{s27, synth};

    fn exhaustive_detectable(net: &Netlist, f: &TransitionFault) -> bool {
        // Brute force over all (s1, v1, v2) combinations (s27: 2^11).
        let n_pi = net.num_inputs();
        let n_ff = net.num_dffs();
        let total = n_pi * 2 + n_ff;
        assert!(total <= 16, "too big for brute force");
        let mut fsim = SerialSim::new(net);
        for combo in 0..(1u32 << total) {
            let bit = |k: usize| (combo >> k) & 1 == 1;
            let s1: fbt_sim::Bits = (0..n_ff).map(bit).collect();
            let v1: fbt_sim::Bits = (n_ff..n_ff + n_pi).map(bit).collect();
            let v2: fbt_sim::Bits = (n_ff + n_pi..total).map(bit).collect();
            let t = fbt_fault::BroadsideTest::new(s1, v1, v2);
            if fsim.detects(&t, f) {
                return true;
            }
        }
        false
    }

    #[test]
    fn podem_agrees_with_exhaustive_search_on_s27() {
        let net = s27();
        let cfg = PodemConfig {
            backtrack_limit: 10_000,
            time_limit: Duration::from_secs(30),
        };
        let mut podem = Podem::new(&net, cfg);
        let mut fsim = SerialSim::new(&net);
        let mut rng = Rng::new(3);
        for f in all_transition_faults(&net) {
            let truth = exhaustive_detectable(&net, &f);
            match podem.generate(&f) {
                AtpgOutcome::Test(cube) => {
                    assert!(truth, "PODEM found a test for undetectable {f}");
                    // The test must actually detect the fault, for any fill.
                    for _ in 0..4 {
                        let t = cube.fill_random(&mut rng);
                        assert!(fsim.detects(&t, &f), "fill of {f}'s cube fails");
                    }
                }
                AtpgOutcome::Untestable => {
                    assert!(!truth, "PODEM called detectable {f} untestable");
                }
                AtpgOutcome::Aborted => panic!("aborted on s27 fault {f}"),
            }
        }
    }

    #[test]
    fn base_cube_is_respected() {
        let net = s27();
        let mut podem = Podem::new(&net, PodemConfig::default());
        // Find any detectable fault and a test for it.
        let g8 = net.find("G8").unwrap();
        let f = TransitionFault::new(g8, Transition::Rise);
        let AtpgOutcome::Test(first) = podem.generate(&f) else {
            panic!("G8 rise should be testable");
        };
        // Extending from its own cube must succeed without changing it.
        let AtpgOutcome::Test(ext) = podem.generate_from(&first, &f) else {
            panic!("extension from own test must succeed");
        };
        assert!(first.compatible(&ext));
    }

    #[test]
    fn multi_target_requires_single_test() {
        let net = s27();
        let cfg = PodemConfig {
            backtrack_limit: 50_000,
            time_limit: Duration::from_secs(30),
        };
        let mut podem = Podem::new(&net, cfg);
        let mut fsim = SerialSim::new(&net);
        // Two individually testable faults; ask for one test for both.
        let faults = [
            TransitionFault::new(net.find("G8").unwrap(), Transition::Rise),
            TransitionFault::new(net.find("G15").unwrap(), Transition::Rise),
        ];
        let base = TestCube::unspecified(&net);
        if let AtpgOutcome::Test(cube) = podem.generate_multi(&base, &faults) {
            let t = cube.fill(false);
            for f in &faults {
                assert!(fsim.detects(&t, f), "joint test misses {f}");
            }
        }
    }

    #[test]
    fn synthetic_circuit_mostly_decided() {
        let net = synth::generate(&synth::find("s298").unwrap());
        let cfg = PodemConfig {
            backtrack_limit: 256,
            time_limit: Duration::from_secs(10),
        };
        let mut podem = Podem::new(&net, cfg);
        let mut fsim = SerialSim::new(&net);
        let faults = all_transition_faults(&net);
        let mut rng = Rng::new(11);
        let mut decided = 0usize;
        let mut tested = 0usize;
        for f in faults.iter().take(120) {
            match podem.generate(f) {
                AtpgOutcome::Test(cube) => {
                    decided += 1;
                    tested += 1;
                    let t = cube.fill_random(&mut rng);
                    assert!(fsim.detects(&t, f), "cube for {f} does not detect it");
                }
                AtpgOutcome::Untestable => decided += 1,
                AtpgOutcome::Aborted => {}
            }
        }
        assert!(decided >= 100, "only {decided}/120 decided");
        assert!(tested >= 40, "only {tested}/120 tested");
    }
}
