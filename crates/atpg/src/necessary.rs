//! Necessary assignments and input necessary assignments (paper §2.3.2 and
//! §3.2).
//!
//! The necessary assignments of a fault are values every test for it must
//! assign; *input* necessary assignments are their restriction to the input
//! variables of the two-frame model. They identify undetectable faults
//! without test generation, seed the search procedures of Chapter 2, and are
//! fed to static timing analysis in Chapter 3 (`set_case_analysis`).

use std::collections::HashSet;

use fbt_fault::{TransitionFault, TransitionPathDelayFault};
use fbt_netlist::{GateKind, Netlist};
use fbt_sim::Trit;

use crate::frames::{var_of, var_parts, Frame};
use crate::implic::Implicator;

/// An assignment `variable = value` in the two-frame model.
pub type VarAssign = (usize, bool);

/// The outcome of the necessary-assignment analysis of one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Analysis {
    /// The fault is undetectable: its detection conditions are
    /// contradictory.
    Undetectable,
    /// The fault is *potentially detectable*: every test for it must make
    /// these assignments.
    Potential(NecessarySets),
}

/// The assignment sets produced for a potentially detectable fault.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NecessarySets {
    /// All necessary assignments (`DetCon`), on any line.
    pub det_con: Vec<VarAssign>,
    /// The input necessary assignments (`InNecAssign`): primary inputs under
    /// both patterns, present-state variables under both patterns.
    pub input_necessary: Vec<VarAssign>,
}

impl Analysis {
    /// The sets, if potentially detectable.
    pub fn sets(&self) -> Option<&NecessarySets> {
        match self {
            Analysis::Potential(s) => Some(s),
            Analysis::Undetectable => None,
        }
    }

    /// Whether the fault was proven undetectable.
    pub fn is_undetectable(&self) -> bool {
        matches!(self, Analysis::Undetectable)
    }
}

/// Is `var` an "input" for the purpose of input necessary assignments:
/// a primary input in either frame, or a state variable in either frame
/// (frame-2 state values are implied by frame 1 but are still reported, as
/// in §3.2)?
pub fn is_reportable_input(net: &Netlist, var: usize) -> bool {
    let (_, node) = var_parts(net.num_nodes(), var);
    matches!(net.node(node).kind(), GateKind::Input | GateKind::Dff)
}

/// Necessary assignments of a single transition fault: `g = v` under the
/// first pattern, `g = v'` under the second, plus all their direct forward
/// and backward implications.
pub fn transition_fault_analysis(net: &Netlist, fault: &TransitionFault) -> Analysis {
    let mut imp = Implicator::new(net);
    match apply_tf(net, &mut imp, fault) {
        Ok(()) => Analysis::Potential(collect(net, &imp)),
        Err(()) => Analysis::Undetectable,
    }
}

fn apply_tf(net: &Netlist, imp: &mut Implicator<'_>, fault: &TransitionFault) -> Result<(), ()> {
    let n = net.num_nodes();
    imp.assign(
        var_of(n, Frame::First, fault.line),
        fault.transition.initial_value(),
    )
    .map_err(|_| ())?;
    imp.assign(
        var_of(n, Frame::Second, fault.line),
        fault.transition.final_value(),
    )
    .map_err(|_| ())?;
    Ok(())
}

fn collect(net: &Netlist, imp: &Implicator<'_>) -> NecessarySets {
    let n = net.num_nodes();
    let mut det_con = Vec::new();
    let mut input_necessary = Vec::new();
    for var in 0..2 * n {
        if let Some(v) = imp.value(var).to_bool() {
            det_con.push((var, v));
            if is_reportable_input(net, var) {
                input_necessary.push((var, v));
            }
        }
    }
    NecessarySets {
        det_con,
        input_necessary,
    }
}

/// Four-step analysis of a transition path delay fault (paper §3.2):
///
/// 1. undetectable if any of its transition faults is in
///    `known_undetectable_tfs` (found by deterministic test generation);
/// 2. merge the necessary assignments of all transition faults along the
///    path; a conflict proves the fault undetectable;
/// 3. add the propagation conditions: every off-path gate input takes its
///    non-controlling value under the second pattern;
/// 4. probe every remaining unspecified input with both values; if both
///    conflict the fault is undetectable, if exactly one conflicts the other
///    becomes an input necessary assignment — iterated to a fixpoint.
pub fn tpdf_analysis(
    net: &Netlist,
    fault: &TransitionPathDelayFault,
    known_undetectable_tfs: &HashSet<TransitionFault>,
) -> Analysis {
    let n = net.num_nodes();
    let trs = fault.transition_faults(net);

    // Step 1.
    if trs.iter().any(|t| known_undetectable_tfs.contains(t)) {
        return Analysis::Undetectable;
    }

    // Step 2.
    let mut imp = Implicator::new(net);
    for t in &trs {
        if apply_tf(net, &mut imp, t).is_err() {
            return Analysis::Undetectable;
        }
    }

    // Step 3: off-path inputs take non-controlling values under pattern 2.
    let path = fault.path.nodes();
    for w in path.windows(2) {
        let (on_path, gate) = (w[0], w[1]);
        let node = net.node(gate);
        let Some(c) = node.kind().controlling_value() else {
            continue; // XOR-class and single-input gates have none
        };
        for &side in node.fanins() {
            if side == on_path {
                continue;
            }
            if imp.assign(var_of(n, Frame::Second, side), !c).is_err() {
                return Analysis::Undetectable;
            }
        }
    }

    // Step 4: probe unspecified inputs.
    let probe_vars: Vec<usize> = (0..2 * n)
        .filter(|&v| is_reportable_input(net, v))
        .collect();
    loop {
        let mut changed = false;
        for &var in &probe_vars {
            if imp.value(var) != Trit::X {
                continue;
            }
            // The frame-2 value of a state variable cannot be assigned
            // freely under a broadside test; still probe it — implications
            // through the frame link keep the analysis sound.
            let mark = imp.checkpoint();
            let zero_ok = imp.assign(var, false).is_ok();
            imp.rollback(mark);
            let one_ok = imp.assign(var, true).is_ok();
            imp.rollback(mark);
            match (zero_ok, one_ok) {
                (false, false) => return Analysis::Undetectable,
                (true, false) => {
                    if imp.assign(var, false).is_err() {
                        return Analysis::Undetectable;
                    }
                    changed = true;
                }
                (false, true) => {
                    if imp.assign(var, true).is_err() {
                        return Analysis::Undetectable;
                    }
                    changed = true;
                }
                (true, true) => {}
            }
        }
        if !changed {
            break;
        }
    }

    Analysis::Potential(collect(net, &imp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_fault::{Path, Transition};
    use fbt_netlist::NetlistBuilder;

    /// The dissertation's Fig. 2.1 circuit: c -> d(NOT) -> e(AND with a DFF
    /// loop b = DFF(e), c = NOT? — modelled faithfully below:
    /// e = AND(d, b); d = NOT(c); b = DFF(e); c driven so that e=0 in frame 1
    /// implies c=0 in frame 2... We reproduce the *published conclusion*:
    /// the path c-d-e with a rising transition at c is undetectable because
    /// the necessary assignments of the faults on c and e conflict.
    fn fig21() -> (Netlist, Path) {
        let mut b = NetlistBuilder::new("fig21");
        b.input("a").unwrap();
        // b is a state variable fed by e; c is b's value buffered (creating
        // the cross-frame dependency of the figure).
        b.dff("bq", "e").unwrap();
        b.gate(GateKind::Buf, "c", &["bq"]).unwrap();
        b.gate(GateKind::Not, "d", &["c"]).unwrap();
        b.gate(GateKind::Nand, "e", &["d", "a"]).unwrap();
        b.output("e").unwrap();
        let net = b.finish().unwrap();
        let path = Path::new(
            &net,
            vec![
                net.find("c").unwrap(),
                net.find("d").unwrap(),
                net.find("e").unwrap(),
            ],
        );
        (net, path)
    }

    use fbt_netlist::GateKind;
    use fbt_netlist::Netlist;

    #[test]
    fn fig21_path_is_undetectable() {
        let (net, path) = fig21();
        // Rising transition at c: needs c=0@1, c=1@2. Transition faults
        // along c-d-e: c rise, d fall, e rise. e rise needs e=0@1 -> bq=0@2
        // -> c=0@2: conflict with c=1@2.
        let f = TransitionPathDelayFault::new(path, Transition::Rise);
        let analysis = tpdf_analysis(&net, &f, &HashSet::new());
        assert!(analysis.is_undetectable(), "Fig. 2.1 conflict not found");
    }

    #[test]
    fn single_tf_analysis_reports_inputs() {
        let net = fbt_netlist::s27();
        let n = net.num_nodes();
        let g14 = net.find("G14").unwrap();
        let g0 = net.find("G0").unwrap();
        // G14 = NOT(G0): rising G14 needs G14=0@1 (G0=1@1), G14=1@2 (G0=0@2).
        let a = transition_fault_analysis(&net, &TransitionFault::new(g14, Transition::Rise));
        let sets = a.sets().expect("detectable");
        assert!(sets
            .input_necessary
            .contains(&(var_of(n, Frame::First, g0), true)));
        assert!(sets
            .input_necessary
            .contains(&(var_of(n, Frame::Second, g0), false)));
    }

    #[test]
    fn every_generated_test_satisfies_input_necessary_assignments() {
        // The defining property: any test that detects the fault agrees
        // with every input necessary assignment.
        let net = fbt_netlist::s27();
        let n = net.num_nodes();
        let faults = fbt_fault::all_transition_faults(&net);
        use fbt_fault::FaultSimEngine;
        let mut fsim = fbt_fault::SerialSim::new(&net);
        let mut rng = fbt_netlist::rng::Rng::new(41);
        let tests: Vec<fbt_fault::BroadsideTest> = (0..200)
            .map(|_| {
                fbt_fault::BroadsideTest::new(
                    (0..3).map(|_| rng.bit()).collect(),
                    (0..4).map(|_| rng.bit()).collect(),
                    (0..4).map(|_| rng.bit()).collect(),
                )
            })
            .collect();
        for f in &faults {
            let Analysis::Potential(sets) = transition_fault_analysis(&net, f) else {
                continue;
            };
            for t in &tests {
                if !fsim.detects(t, f) {
                    continue;
                }
                // Evaluate the test's value on each reported input var.
                for &(var, val) in &sets.input_necessary {
                    let (frame, node) = var_parts(n, var);
                    let actual = match (frame, net.node(node).kind()) {
                        (Frame::First, GateKind::Input) => {
                            let i = net.inputs().iter().position(|&p| p == node).unwrap();
                            t.v1.get(i)
                        }
                        (Frame::Second, GateKind::Input) => {
                            let i = net.inputs().iter().position(|&p| p == node).unwrap();
                            t.v2.get(i)
                        }
                        (Frame::First, GateKind::Dff) => {
                            let i = net.dffs().iter().position(|&d| d == node).unwrap();
                            t.scan_in.get(i)
                        }
                        (Frame::Second, GateKind::Dff) => {
                            let i = net.dffs().iter().position(|&d| d == node).unwrap();
                            t.second_state(&net).get(i)
                        }
                        _ => unreachable!("reportable inputs only"),
                    };
                    assert_eq!(
                        actual, val,
                        "test detecting {f} violates necessary assignment on var {var}"
                    );
                }
            }
        }
    }

    #[test]
    fn merged_conflicts_mark_undetectable() {
        // A path through an inverter pair where the launch requirement on
        // the source conflicts with the side-value requirement at the sink.
        let mut b = NetlistBuilder::new("conf");
        b.input("x").unwrap();
        b.gate(GateKind::Not, "y", &["x"]).unwrap();
        b.gate(GateKind::And, "z", &["x", "y"]).unwrap();
        b.output("z").unwrap();
        let net = b.finish().unwrap();
        // Path x-z rising: needs z=1@2 -> x=1 and y=1 -> x=0: conflict.
        let path = Path::new(&net, vec![net.find("x").unwrap(), net.find("z").unwrap()]);
        let f = TransitionPathDelayFault::new(path, Transition::Rise);
        assert!(tpdf_analysis(&net, &f, &HashSet::new()).is_undetectable());
    }

    #[test]
    fn known_undetectable_tf_short_circuits() {
        let net = fbt_netlist::s27();
        let paths = fbt_fault::path::enumerate_paths(&net, 5);
        let f = TransitionPathDelayFault::new(paths[0].clone(), Transition::Rise);
        let mut known = HashSet::new();
        known.insert(f.transition_faults(&net)[0]);
        assert!(tpdf_analysis(&net, &f, &known).is_undetectable());
    }
}
