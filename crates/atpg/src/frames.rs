//! The two-frame combinational model of a broadside test (paper §1.3).
//!
//! Frame 1 evaluates the circuit under `<s1, v1>`; frame 2 under
//! `<s2, v2>` where every frame-2 flip-flop value is tied to the frame-1
//! value of its D-input driver. Faults live in frame 2 (the launch/capture
//! frame); frame 1 only establishes launch conditions.

use fbt_fault::{Transition, TransitionFault};
use fbt_netlist::{GateKind, Netlist, NodeId};
use fbt_sim::{tv, Trit};

use crate::TestCube;

/// Which time frame a variable lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frame {
    /// The first pattern `<s1, v1>`.
    First,
    /// The second pattern `<s2, v2>`.
    Second,
}

/// The variable id of `node` in `frame`, for a circuit with `n_nodes` nodes.
#[inline]
pub fn var_of(n_nodes: usize, frame: Frame, node: NodeId) -> usize {
    match frame {
        Frame::First => node.index(),
        Frame::Second => n_nodes + node.index(),
    }
}

/// Decompose a variable id back into `(frame, node)`.
#[inline]
pub fn var_parts(n_nodes: usize, var: usize) -> (Frame, NodeId) {
    if var < n_nodes {
        (Frame::First, NodeId(var as u32))
    } else {
        (Frame::Second, NodeId((var - n_nodes) as u32))
    }
}

/// The status of a target fault under the current (partial) assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStatus {
    /// A definite fault effect reaches an observable point for *every*
    /// completion of the unspecified inputs.
    Detected,
    /// Not yet decided; pursuing the contained objective makes progress.
    Possible(Objective),
    /// No completion of the current assignments can detect the fault.
    Impossible,
}

/// A value objective on a (possibly internal) line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Objective {
    /// Variable to justify.
    pub var: usize,
    /// Desired value.
    pub value: bool,
}

/// The two-frame three-valued value model.
#[derive(Debug, Clone)]
pub struct TwoFrame<'a> {
    net: &'a Netlist,
    n: usize,
    /// Good-circuit values, `2 * n` entries.
    good: Vec<Trit>,
    /// Frame-2 faulty-plane scratch buffer.
    faulty: Vec<Trit>,
    /// Frame-2 observability (PO driver or D-input driver).
    observable: Vec<bool>,
    /// The decision variables: frame-1 PIs, frame-1 PPIs, frame-2 PIs.
    input_vars: Vec<usize>,
}

impl<'a> TwoFrame<'a> {
    /// Create an all-X model.
    pub fn new(net: &'a Netlist) -> Self {
        let n = net.num_nodes();
        let mut observable = vec![false; n];
        for &o in net.outputs() {
            observable[o.index()] = true;
        }
        for &d in net.dffs() {
            observable[net.node(d).fanins()[0].index()] = true;
        }
        let mut input_vars = Vec::with_capacity(net.num_inputs() * 2 + net.num_dffs());
        for &pi in net.inputs() {
            input_vars.push(var_of(n, Frame::First, pi));
        }
        for &ff in net.dffs() {
            input_vars.push(var_of(n, Frame::First, ff));
        }
        for &pi in net.inputs() {
            input_vars.push(var_of(n, Frame::Second, pi));
        }
        TwoFrame {
            net,
            n,
            good: vec![Trit::X; 2 * n],
            faulty: vec![Trit::X; n],
            observable,
            input_vars,
        }
    }

    /// The underlying netlist.
    pub fn net(&self) -> &Netlist {
        self.net
    }

    /// Number of nodes per frame.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The decision variables, in backtrace-stop order.
    pub fn input_vars(&self) -> &[usize] {
        &self.input_vars
    }

    /// Is `var` a decision variable (frame-1 PI/PPI or frame-2 PI)?
    pub fn is_input_var(&self, var: usize) -> bool {
        let (frame, node) = var_parts(self.n, var);
        matches!(
            (frame, self.net.node(node).kind()),
            (_, GateKind::Input) | (Frame::First, GateKind::Dff)
        )
    }

    /// Current good value of a variable.
    #[inline]
    pub fn value(&self, var: usize) -> Trit {
        self.good[var]
    }

    /// Set an input variable (no propagation; call [`TwoFrame::forward`]).
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a decision variable.
    pub fn set_input(&mut self, var: usize, value: Trit) {
        assert!(self.is_input_var(var), "var {var} is not an input variable");
        self.good[var] = value;
    }

    /// Clear all values to X.
    pub fn clear(&mut self) {
        self.good.fill(Trit::X);
    }

    /// Load a test cube onto the decision variables (clears first).
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn load_cube(&mut self, cube: &TestCube) {
        assert_eq!(cube.v1.len(), self.net.num_inputs(), "v1 width");
        assert_eq!(cube.s1.len(), self.net.num_dffs(), "s1 width");
        self.clear();
        for (i, &pi) in self.net.inputs().iter().enumerate() {
            self.good[var_of(self.n, Frame::First, pi)] = cube.v1[i];
            self.good[var_of(self.n, Frame::Second, pi)] = cube.v2[i];
        }
        for (i, &ff) in self.net.dffs().iter().enumerate() {
            self.good[var_of(self.n, Frame::First, ff)] = cube.s1[i];
        }
    }

    /// Extract the current decision-variable assignments as a cube.
    pub fn cube(&self) -> TestCube {
        TestCube {
            s1: self
                .net
                .dffs()
                .iter()
                .map(|&ff| self.good[var_of(self.n, Frame::First, ff)])
                .collect(),
            v1: self
                .net
                .inputs()
                .iter()
                .map(|&pi| self.good[var_of(self.n, Frame::First, pi)])
                .collect(),
            v2: self
                .net
                .inputs()
                .iter()
                .map(|&pi| self.good[var_of(self.n, Frame::Second, pi)])
                .collect(),
        }
    }

    /// Recompute all gate values from the current input assignments: frame 1,
    /// the flip-flop link, then frame 2.
    pub fn forward(&mut self) {
        let n = self.n;
        for &id in self.net.eval_order() {
            let node = self.net.node(id);
            self.good[id.index()] = tv::eval_gate_tv(
                node.kind(),
                node.fanins().iter().map(|f| self.good[f.index()]),
            );
        }
        for &d in self.net.dffs() {
            let drv = self.net.node(d).fanins()[0];
            self.good[n + d.index()] = self.good[drv.index()];
        }
        for &id in self.net.eval_order() {
            let node = self.net.node(id);
            self.good[n + id.index()] = tv::eval_gate_tv(
                node.kind(),
                node.fanins().iter().map(|f| self.good[n + f.index()]),
            );
        }
    }

    /// Compute the status of a transition fault under the current good
    /// values (call [`TwoFrame::forward`] first).
    pub fn fault_status(&mut self, fault: &TransitionFault) -> FaultStatus {
        let n = self.n;
        let g = fault.line;
        let init = fault.transition.initial_value();
        let fin = fault.transition.final_value();

        // Launch condition in frame 1.
        match self.good[g.index()].to_bool() {
            Some(v) if v != init => return FaultStatus::Impossible,
            None => {
                return FaultStatus::Possible(Objective {
                    var: var_of(n, Frame::First, g),
                    value: init,
                })
            }
            Some(_) => {}
        }
        // Fault-free final value in frame 2.
        match self.good[n + g.index()].to_bool() {
            Some(v) if v != fin => return FaultStatus::Impossible,
            None => {
                return FaultStatus::Possible(Objective {
                    var: var_of(n, Frame::Second, g),
                    value: fin,
                })
            }
            Some(_) => {}
        }

        // Faulty plane over frame 2: g stuck at the initial value.
        self.faulty.clear();
        self.faulty.extend_from_slice(&self.good[n..]);
        self.faulty[g.index()] = Trit::from_bool(init);
        for &id in self.net.eval_order() {
            if id == g {
                continue;
            }
            let node = self.net.node(id);
            self.faulty[id.index()] = tv::eval_gate_tv(
                node.kind(),
                node.fanins().iter().map(|f| self.faulty[f.index()]),
            );
        }

        // Definite detection?
        let definite_d = |good: Trit, faulty: Trit| -> bool {
            matches!((good.to_bool(), faulty.to_bool()), (Some(a), Some(b)) if a != b)
        };
        for id in self.net.node_ids() {
            if self.observable[id.index()]
                && definite_d(self.good[n + id.index()], self.faulty[id.index()])
            {
                return FaultStatus::Detected;
            }
        }

        // Can a fault effect still reach an observable point? A node can
        // carry one in the future if it has a definite D now, or if either
        // plane is X. Propagate "reaches an observable maybe-D node" back
        // through frame 2.
        let maybe = |idx: usize| -> bool {
            definite_d(self.good[n + idx], self.faulty[idx])
                || self.good[n + idx] == Trit::X
                || self.faulty[idx] == Trit::X
        };
        let mut reaches = vec![false; n];
        for &id in self.net.eval_order().iter().rev() {
            let i = id.index();
            if !maybe(i) {
                continue;
            }
            if self.observable[i] {
                reaches[i] = true;
                continue;
            }
            reaches[i] = self
                .net
                .node(id)
                .fanouts()
                .iter()
                .any(|&fo| !self.net.node(fo).kind().is_source() && reaches[fo.index()]);
        }
        // Sources (the fault may sit on a PI or state line).
        {
            let i = g.index();
            if self.net.node(g).kind().is_source() && maybe(i) {
                reaches[i] =
                    self.observable[i]
                        || self.net.node(g).fanouts().iter().any(|&fo| {
                            !self.net.node(fo).kind().is_source() && reaches[fo.index()]
                        });
            }
        }

        // D-frontier: gates whose output is not yet a definite D but which
        // have a definite-D fanin, and which can still reach an observable.
        let mut best: Option<(u32, Objective)> = None;
        for &id in self.net.eval_order() {
            let i = id.index();
            if !reaches[i] || definite_d(self.good[n + i], self.faulty[i]) {
                continue;
            }
            if self.good[n + i] != Trit::X && self.faulty[i] != Trit::X {
                continue; // fully determined, equal: blocked
            }
            let node = self.net.node(id);
            let has_d_input = node
                .fanins()
                .iter()
                .any(|f| definite_d(self.good[n + f.index()], self.faulty[f.index()]));
            if !has_d_input {
                continue;
            }
            // Objective: set an unspecified side input to the
            // non-controlling value (or an arbitrary value for XOR-class).
            let side = node
                .fanins()
                .iter()
                .find(|f| self.good[n + f.index()] == Trit::X);
            if let Some(&side) = side {
                let value = match node.kind().controlling_value() {
                    Some(c) => !c,
                    None => false,
                };
                let obj = Objective {
                    var: var_of(n, Frame::Second, side),
                    value,
                };
                let lvl = self.net.level(id);
                if best.is_none_or(|(l, _)| lvl < l) {
                    best = Some((lvl, obj));
                }
            }
        }
        if let Some((_, obj)) = best {
            return FaultStatus::Possible(obj);
        }

        // No definite detection and no workable frontier. If the fault site
        // itself still reaches an observable point through X values the
        // situation may be resolved by other assignments; give the search an
        // objective only through the frontier, otherwise declare impossible.
        FaultStatus::Impossible
    }

    /// Backtrace an objective to an unassigned decision variable, flipping
    /// polarity through inverting gates (PODEM backtrace).
    ///
    /// Returns `None` when every path from the objective is already fully
    /// specified (the objective cannot be justified by new assignments).
    pub fn backtrace(&self, obj: Objective) -> Option<(usize, bool)> {
        let n = self.n;
        let mut var = obj.var;
        let mut value = obj.value;
        loop {
            if self.is_input_var(var) {
                if self.good[var] == Trit::X {
                    return Some((var, value));
                }
                return None; // already assigned: cannot justify here
            }
            let (frame, node) = var_parts(n, var);
            let nd = self.net.node(node);
            match (frame, nd.kind()) {
                (Frame::Second, GateKind::Dff) => {
                    // Cross into frame 1 through the D input.
                    var = var_of(n, Frame::First, nd.fanins()[0]);
                }
                (_, GateKind::Not) => {
                    var = var_of(n, frame, nd.fanins()[0]);
                    value = !value;
                }
                (_, GateKind::Buf) => {
                    var = var_of(n, frame, nd.fanins()[0]);
                }
                (_, kind) => {
                    let base = |node: NodeId| var_of(n, frame, node);
                    // Effective AND/OR demand after folding the inversion.
                    let (all_needed, each_value) = match kind {
                        GateKind::And => (value, true),
                        GateKind::Nand => (!value, true),
                        GateKind::Or => (!value, false),
                        GateKind::Nor => (value, false),
                        GateKind::Xor | GateKind::Xnor => {
                            // Pick any unspecified input; the demanded parity
                            // can always be fixed up by that input.
                            let side = nd
                                .fanins()
                                .iter()
                                .find(|f| self.good[base(**f)] == Trit::X)?;
                            let parity: bool = nd
                                .fanins()
                                .iter()
                                .filter(|f| **f != *side)
                                .map(|f| self.good[base(*f)].to_bool().unwrap_or(false))
                                .fold(false, |a, b| a ^ b);
                            let invert = kind == GateKind::Xnor;
                            var = base(*side);
                            value = value ^ parity ^ invert;
                            continue;
                        }
                        _ => unreachable!("sources handled above"),
                    };
                    if all_needed {
                        // Every input must take `each_value`: walk into any
                        // unspecified one.
                        let side = nd
                            .fanins()
                            .iter()
                            .find(|f| self.good[base(**f)] == Trit::X)?;
                        var = base(*side);
                        value = each_value;
                    } else {
                        // One input taking `!each_value` suffices: choose the
                        // unspecified input with the shallowest logic.
                        let side = nd
                            .fanins()
                            .iter()
                            .filter(|f| self.good[base(**f)] == Trit::X)
                            .min_by_key(|f| self.net.level(**f))?;
                        var = base(*side);
                        value = !each_value;
                    }
                }
            }
        }
    }
}

/// Convenience: the transition fault a path-position implies (re-exported
/// here for the TPDF pipeline).
pub fn tf(line: NodeId, t: Transition) -> TransitionFault {
    TransitionFault::new(line, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;
    use fbt_sim::Bits;

    #[test]
    fn forward_matches_scalar_two_frame() {
        let net = s27();
        let mut tfm = TwoFrame::new(&net);
        let cube = TestCube {
            s1: vec![Trit::Zero, Trit::Zero, Trit::One],
            v1: vec![Trit::Zero; 4],
            v2: vec![Trit::One; 4],
        };
        tfm.load_cube(&cube);
        tfm.forward();
        // Compare against the broadside semantics from fbt-fault.
        let t = cube.fill(false);
        let s2 = t.second_state(&net);
        for (i, &ff) in net.dffs().iter().enumerate() {
            assert_eq!(
                tfm.value(var_of(net.num_nodes(), Frame::Second, ff)),
                Trit::from_bool(s2.get(i))
            );
        }
    }

    #[test]
    fn fully_specified_status_matches_fault_simulator() {
        // For fully specified cubes, Detected <-> the fault simulator agrees.
        let net = s27();
        let mut tfm = TwoFrame::new(&net);
        use fbt_fault::FaultSimEngine;
        let mut fsim = fbt_fault::SerialSim::new(&net);
        let faults = fbt_fault::all_transition_faults(&net);
        let mut rng = fbt_netlist::rng::Rng::new(17);
        for _ in 0..25 {
            let s1: Bits = (0..3).map(|_| rng.bit()).collect();
            let v1: Bits = (0..4).map(|_| rng.bit()).collect();
            let v2: Bits = (0..4).map(|_| rng.bit()).collect();
            let test = fbt_fault::BroadsideTest::new(s1.clone(), v1.clone(), v2.clone());
            let cube = TestCube {
                s1: s1.iter().map(Trit::from_bool).collect(),
                v1: v1.iter().map(Trit::from_bool).collect(),
                v2: v2.iter().map(Trit::from_bool).collect(),
            };
            tfm.load_cube(&cube);
            tfm.forward();
            for f in &faults {
                let status = tfm.fault_status(f);
                let detected = fsim.detects(&test, f);
                match status {
                    FaultStatus::Detected => assert!(detected, "fault {f}"),
                    FaultStatus::Impossible => assert!(!detected, "fault {f}"),
                    FaultStatus::Possible(_) => {
                        panic!("fully specified cube left fault {f} undecided")
                    }
                }
            }
        }
    }

    #[test]
    fn unspecified_cube_gives_objectives() {
        let net = s27();
        let mut tfm = TwoFrame::new(&net);
        tfm.load_cube(&TestCube::unspecified(&net));
        tfm.forward();
        let g14 = net.find("G14").unwrap();
        let status = tfm.fault_status(&TransitionFault::new(g14, Transition::Rise));
        match status {
            FaultStatus::Possible(obj) => {
                // First objective: launch value in frame 1.
                assert_eq!(obj.var, var_of(net.num_nodes(), Frame::First, g14));
                assert!(!obj.value); // rise -> initial 0
            }
            other => panic!("expected Possible, got {other:?}"),
        }
    }

    #[test]
    fn backtrace_reaches_an_input() {
        let net = s27();
        let mut tfm = TwoFrame::new(&net);
        tfm.load_cube(&TestCube::unspecified(&net));
        tfm.forward();
        // Objective: G14 (NOT of PI G0) = 0 in frame 1 -> decision G0 = 1.
        let g14 = net.find("G14").unwrap();
        let g0 = net.find("G0").unwrap();
        let n = net.num_nodes();
        let got = tfm
            .backtrace(Objective {
                var: var_of(n, Frame::First, g14),
                value: false,
            })
            .unwrap();
        assert_eq!(got, (var_of(n, Frame::First, g0), true));
    }

    #[test]
    fn backtrace_crosses_frames_through_dff() {
        let net = s27();
        let mut tfm = TwoFrame::new(&net);
        tfm.load_cube(&TestCube::unspecified(&net));
        tfm.forward();
        let n = net.num_nodes();
        // Frame-2 value of DFF G5 is justified through frame-1 G10.
        let g5 = net.find("G5").unwrap();
        let (var, _) = tfm
            .backtrace(Objective {
                var: var_of(n, Frame::Second, g5),
                value: true,
            })
            .unwrap();
        let (frame, _) = var_parts(n, var);
        assert_eq!(frame, Frame::First, "decision must land in frame 1");
        assert!(tfm.is_input_var(var));
    }
}
