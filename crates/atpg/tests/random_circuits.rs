//! Randomized cross-validation of the ATPG stack on generated circuits:
//! every test PODEM emits must actually detect its target fault under the
//! independent bit-parallel fault simulator, for *any* fill of the cube's
//! unspecified bits; and necessary assignments must never contradict a
//! PODEM-found test.

use proptest::prelude::*;
use std::time::Duration;

use fbt_atpg::necessary::{transition_fault_analysis, Analysis};
use fbt_atpg::podem::{AtpgOutcome, Podem};
use fbt_atpg::PodemConfig;
use fbt_fault::sim::FaultSim;
use fbt_fault::{all_transition_faults, collapse};
use fbt_netlist::rng::Rng;
use fbt_netlist::synth::CircuitSpec;
use fbt_netlist::{synth, Netlist};

fn small_circuit() -> impl Strategy<Value = Netlist> {
    (2usize..6, 1usize..4, 2usize..7, 15usize..60, any::<u64>()).prop_map(
        |(pi, po, ff, gates, seed)| {
            let mut spec = CircuitSpec::new("prop-atpg", pi, po, ff, gates);
            spec.seed = seed;
            synth::generate(&spec)
        },
    )
}

fn cfg() -> PodemConfig {
    PodemConfig {
        backtrack_limit: 3_000,
        time_limit: Duration::from_secs(5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// PODEM's tests are sound: any random fill of the returned cube
    /// detects the fault under the fault simulator.
    #[test]
    fn podem_tests_are_sound(net in small_circuit(), fill_seed in any::<u64>()) {
        let mut podem = Podem::new(&net, cfg());
        let mut fsim = FaultSim::new(&net);
        let mut rng = Rng::new(fill_seed);
        let faults = collapse(&net, &all_transition_faults(&net));
        for f in faults.iter().take(30) {
            if let AtpgOutcome::Test(cube) = podem.generate(f) {
                for _ in 0..3 {
                    let t = cube.fill_random(&mut rng);
                    prop_assert!(
                        fsim.detects(&t, f),
                        "PODEM cube for {f} fails under fill"
                    );
                }
            }
        }
    }

    /// Faults that PODEM proves untestable are never detected by random
    /// simulation (a one-sided soundness check for Untestable verdicts).
    #[test]
    fn untestable_faults_resist_random_tests(net in small_circuit(), seed in any::<u64>()) {
        let mut podem = Podem::new(&net, cfg());
        let mut fsim = FaultSim::new(&net);
        let mut rng = Rng::new(seed);
        let faults = collapse(&net, &all_transition_faults(&net));
        let tests: Vec<fbt_fault::BroadsideTest> = (0..96)
            .map(|_| {
                fbt_fault::BroadsideTest::new(
                    (0..net.num_dffs()).map(|_| rng.bit()).collect(),
                    (0..net.num_inputs()).map(|_| rng.bit()).collect(),
                    (0..net.num_inputs()).map(|_| rng.bit()).collect(),
                )
            })
            .collect();
        for f in faults.iter().take(30) {
            if matches!(podem.generate(f), AtpgOutcome::Untestable) {
                for t in &tests {
                    prop_assert!(
                        !fsim.detects(t, f),
                        "untestable {f} detected by a random test"
                    );
                }
            }
        }
    }

    /// Necessary-assignment analysis is consistent with PODEM: a fault with
    /// contradictory necessary assignments is never given a test, and every
    /// PODEM test satisfies the computed input necessary assignments.
    #[test]
    fn necessary_assignments_agree_with_podem(net in small_circuit()) {
        let mut podem = Podem::new(&net, cfg());
        let faults = collapse(&net, &all_transition_faults(&net));
        for f in faults.iter().take(25) {
            let analysis = transition_fault_analysis(&net, f);
            let outcome = podem.generate(f);
            if analysis.is_undetectable() {
                prop_assert!(
                    !matches!(outcome, AtpgOutcome::Test(_)),
                    "NA says undetectable but PODEM found a test for {f}"
                );
            }
            if let (Analysis::Potential(sets), AtpgOutcome::Test(cube)) =
                (analysis, outcome)
            {
                let base = fbt_atpg::tpdf::cube_from_inputs(&net, &sets.input_necessary);
                prop_assert!(
                    base.compatible(&cube),
                    "PODEM test for {f} violates its necessary assignments"
                );
            }
        }
    }
}
