//! Randomized cross-validation of the ATPG stack on generated circuits:
//! every test PODEM emits must actually detect its target fault under the
//! independent bit-parallel fault simulator, for *any* fill of the cube's
//! unspecified bits; and necessary assignments must never contradict a
//! PODEM-found test.
//!
//! Runs deterministically from fixed seeds with the in-tree RNG so the
//! suite needs no external crates (the build environment is offline).

use std::time::Duration;

use fbt_atpg::necessary::{transition_fault_analysis, Analysis};
use fbt_atpg::podem::{AtpgOutcome, Podem};
use fbt_atpg::PodemConfig;
use fbt_fault::{all_transition_faults, collapse, FaultSimEngine, SerialSim};
use fbt_netlist::rng::Rng;
use fbt_netlist::synth::CircuitSpec;
use fbt_netlist::{synth, Netlist};

/// Derive a small random circuit from one RNG draw, mirroring the ranges
/// the old proptest strategy used.
fn small_circuit(rng: &mut Rng) -> Netlist {
    let pi = 2 + (rng.next_u64() % 4) as usize; // 2..6
    let po = 1 + (rng.next_u64() % 3) as usize; // 1..4
    let ff = 2 + (rng.next_u64() % 5) as usize; // 2..7
    let gates = 15 + (rng.next_u64() % 45) as usize; // 15..60
    let mut spec = CircuitSpec::new("rand-atpg", pi, po, ff, gates);
    spec.seed = rng.next_u64();
    synth::generate(&spec)
}

fn cfg() -> PodemConfig {
    PodemConfig {
        backtrack_limit: 3_000,
        time_limit: Duration::from_secs(5),
    }
}

/// PODEM's tests are sound: any random fill of the returned cube detects
/// the fault under the fault simulator.
#[test]
fn podem_tests_are_sound() {
    let mut rng = Rng::new(0xA1);
    for _ in 0..25 {
        let net = small_circuit(&mut rng);
        let mut podem = Podem::new(&net, cfg());
        let mut fsim = SerialSim::new(&net);
        let faults = collapse(&net, &all_transition_faults(&net));
        for f in faults.iter().take(30) {
            if let AtpgOutcome::Test(cube) = podem.generate(f) {
                for _ in 0..3 {
                    let t = cube.fill_random(&mut rng);
                    assert!(fsim.detects(&t, f), "PODEM cube for {f} fails under fill");
                }
            }
        }
    }
}

/// Faults that PODEM proves untestable are never detected by random
/// simulation (a one-sided soundness check for Untestable verdicts).
#[test]
fn untestable_faults_resist_random_tests() {
    let mut rng = Rng::new(0xB2);
    for _ in 0..25 {
        let net = small_circuit(&mut rng);
        let mut podem = Podem::new(&net, cfg());
        let mut fsim = SerialSim::new(&net);
        let faults = collapse(&net, &all_transition_faults(&net));
        let tests: Vec<fbt_fault::BroadsideTest> = (0..96)
            .map(|_| {
                fbt_fault::BroadsideTest::new(
                    (0..net.num_dffs()).map(|_| rng.bit()).collect(),
                    (0..net.num_inputs()).map(|_| rng.bit()).collect(),
                    (0..net.num_inputs()).map(|_| rng.bit()).collect(),
                )
            })
            .collect();
        for f in faults.iter().take(30) {
            if matches!(podem.generate(f), AtpgOutcome::Untestable) {
                for t in &tests {
                    assert!(
                        !fsim.detects(t, f),
                        "untestable {f} detected by a random test"
                    );
                }
            }
        }
    }
}

/// Necessary-assignment analysis is consistent with PODEM: a fault with
/// contradictory necessary assignments is never given a test, and every
/// PODEM test satisfies the computed input necessary assignments.
#[test]
fn necessary_assignments_agree_with_podem() {
    let mut rng = Rng::new(0xC3);
    for _ in 0..25 {
        let net = small_circuit(&mut rng);
        let mut podem = Podem::new(&net, cfg());
        let faults = collapse(&net, &all_transition_faults(&net));
        for f in faults.iter().take(25) {
            let analysis = transition_fault_analysis(&net, f);
            let outcome = podem.generate(f);
            if analysis.is_undetectable() {
                assert!(
                    !matches!(outcome, AtpgOutcome::Test(_)),
                    "NA says undetectable but PODEM found a test for {f}"
                );
            }
            if let (Analysis::Potential(sets), AtpgOutcome::Test(cube)) = (analysis, outcome) {
                let base = fbt_atpg::tpdf::cube_from_inputs(&net, &sets.input_necessary);
                assert!(
                    base.compatible(&cube),
                    "PODEM test for {f} violates its necessary assignments"
                );
            }
        }
    }
}
