//! Exhaustive validation of the TPDF pipeline on s27.
//!
//! s27 is small enough to enumerate every broadside test (2^11), so the
//! pipeline's per-fault verdicts can be checked against ground truth.
//!
//! Note on the paper's Table 2.1: it reports 25 detected / 31 undetectable
//! for s27, while exhaustive search under the detection semantics defined in
//! the dissertation's Chapter 1 (launch value under pattern 1, stuck-at
//! propagation to a primary output or scan capture under pattern 2) yields
//! 23 / 33. The two-fault difference is a tool-level semantic detail of the
//! authors' fault simulator; our pipeline is proven *internally* exact here.

use fbt_atpg::tpdf::{run_pipeline, TpdfConfig, TpdfStatus};
use fbt_atpg::PodemConfig;
use fbt_fault::path::{enumerate_paths, tpdf_list};
use fbt_fault::{FaultSimEngine, PackedParallelSim};
use fbt_netlist::s27;
use fbt_sim::Bits;
use std::time::Duration;

fn all_broadside_tests() -> Vec<fbt_fault::BroadsideTest> {
    (0u32..(1 << 11))
        .map(|combo| {
            let bit = |k: usize| (combo >> k) & 1 == 1;
            let s1: Bits = (0..3).map(bit).collect();
            let v1: Bits = (3..7).map(bit).collect();
            let v2: Bits = (7..11).map(bit).collect();
            fbt_fault::BroadsideTest::new(s1, v1, v2)
        })
        .collect()
}

#[test]
fn pipeline_matches_exhaustive_ground_truth_on_s27() {
    let net = s27();
    let faults = tpdf_list(&enumerate_paths(&net, usize::MAX));
    assert_eq!(faults.len(), 56, "Table 2.1: 56 faults for s27");

    let tests = all_broadside_tests();
    let mut fsim = PackedParallelSim::new(&net);
    let words = tests.len().div_ceil(64);

    let truth: Vec<bool> = faults
        .iter()
        .map(|f| {
            let trs = f.transition_faults(&net);
            let mat = fsim.detection_matrix(&tests, &trs);
            (0..words).any(|w| {
                let mut all = !0u64;
                for fi in 0..mat.num_faults() {
                    all &= mat.row(fi)[w];
                }
                all != 0
            })
        })
        .collect();
    let detectable = truth.iter().filter(|&&d| d).count();
    assert_eq!(detectable, 23, "ground truth for s27 (paper reports 25)");

    let cfg = TpdfConfig {
        tf_podem: PodemConfig {
            backtrack_limit: 5_000,
            time_limit: Duration::from_secs(10),
        },
        heuristic_time_limit: Duration::from_millis(300),
        bnb: PodemConfig {
            backtrack_limit: 200_000,
            time_limit: Duration::from_secs(20),
        },
        sat_fallback: true,
        preflight: true,
        seed: 7,
    };
    let report = run_pipeline(&net, &faults, &cfg);
    for ((f, verdict), &truly_detectable) in faults.iter().zip(&report.statuses).zip(&truth) {
        match verdict {
            TpdfStatus::Detected(..) => assert!(
                truly_detectable,
                "pipeline detected undetectable {}",
                f.path.display(&net)
            ),
            TpdfStatus::Undetectable(_) => assert!(
                !truly_detectable,
                "pipeline declared detectable {} undetectable",
                f.path.display(&net)
            ),
            TpdfStatus::Aborted => panic!("abort on s27: {}", f.path.display(&net)),
        }
    }
}
