//! A compact, fixed-length bitvector.

use std::fmt;

/// A fixed-length packed bitvector.
///
/// Used for scan states, primary-input vectors and output responses. Bits are
/// stored 64 per word; the unused tail of the last word is kept at zero so
/// that equality and popcounts are well defined.
///
/// # Example
///
/// ```
/// use fbt_sim::Bits;
/// let mut b = Bits::zeros(70);
/// b.set(69, true);
/// assert!(b.get(69));
/// assert_eq!(b.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    words: Vec<u64>,
    len: usize,
}

impl Bits {
    /// An all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bits {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build from packed words: bit `i` of the vector is bit `i % 64` of
    /// `words[i / 64]`.
    ///
    /// # Panics
    ///
    /// Panics if the word count is not `len.div_ceil(64)` or the unused tail
    /// bits of the last word are not zero (the representation invariant).
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        if !len.is_multiple_of(64) {
            assert_eq!(words[len / 64] >> (len % 64), 0, "tail bits must be zero");
        }
        Bits { words, len }
    }

    /// Build from a boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut b = Bits::zeros(bools.len());
        for (i, &v) in bools.iter().enumerate() {
            if v {
                b.set(i, true);
            }
        }
        b
    }

    /// Build from a `0`/`1` string, most significant bit first.
    ///
    /// # Panics
    ///
    /// Panics on characters other than `0` and `1`; use
    /// [`Bits::try_from_str01`] for a fallible version.
    pub fn from_str01(s: &str) -> Self {
        Bits::try_from_str01(s).expect("invalid bit string")
    }

    /// Build from a `0`/`1` string, most significant bit first, reporting
    /// the first offending character instead of panicking.
    ///
    /// ```
    /// use fbt_sim::Bits;
    /// use fbt_netlist::Error;
    ///
    /// assert_eq!(Bits::try_from_str01("0110").unwrap().len(), 4);
    /// assert_eq!(
    ///     Bits::try_from_str01("01x0"),
    ///     Err(Error::InvalidBitChar { index: 2, found: 'x' })
    /// );
    /// ```
    pub fn try_from_str01(s: &str) -> Result<Self, fbt_netlist::Error> {
        let bools: Vec<bool> = s
            .chars()
            .enumerate()
            .map(|(index, c)| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                found => Err(fbt_netlist::Error::InvalidBitChar { index, found }),
            })
            .collect::<Result<_, _>>()?;
        Ok(Bits::from_bools(&bools))
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if v {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of positions where `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming(&self, other: &Bits) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterate over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Expand to a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// The underlying words (tail bits are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits[")?;
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        // Pack directly into words — no intermediate `Vec<bool>` and no
        // per-bit bounds check; this is on the hot path of lane extraction.
        let iter = iter.into_iter();
        let mut words: Vec<u64> = Vec::with_capacity(iter.size_hint().0.div_ceil(64));
        let mut len = 0usize;
        let mut cur = 0u64;
        for v in iter {
            if v {
                cur |= 1u64 << (len % 64);
            }
            len += 1;
            if len.is_multiple_of(64) {
                words.push(cur);
                cur = 0;
            }
        }
        if !len.is_multiple_of(64) {
            words.push(cur);
        }
        Bits { words, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bits::zeros(130);
        for i in (0..130).step_by(3) {
            b.set(i, true);
        }
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0);
        }
        assert_eq!(b.count_ones(), (0..130).step_by(3).count());
    }

    #[test]
    fn from_str01_msb_first() {
        let b = Bits::from_str01("1010");
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(2));
        assert!(!b.get(3));
        assert_eq!(b.to_string(), "1010");
    }

    #[test]
    fn hamming_distance() {
        let a = Bits::from_str01("110010");
        let b = Bits::from_str01("100011");
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let b = Bits::zeros(8);
        let _ = b.get(8);
    }

    #[test]
    fn collect_from_iterator() {
        let b: Bits = (0..5).map(|i| i % 2 == 0).collect();
        assert_eq!(b.to_string(), "10101");
    }

    #[test]
    fn tail_bits_stay_zero() {
        let mut b = Bits::zeros(65);
        b.set(64, true);
        b.set(64, false);
        assert_eq!(b.words()[1], 0);
        assert_eq!(b, Bits::zeros(65));
    }
}
