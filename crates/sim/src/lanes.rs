//! Multi-lane sequential simulation: up to 64 independent functional
//! trajectories evaluated in one levelized pass per cycle.
//!
//! This is the sequential counterpart of [`crate::comb::eval_packed`]: each
//! bit position (*lane*) of a `u64` word carries one candidate's trajectory.
//! All lanes start from a shared state (the speculative candidates of the
//! paper's Chapter 4 all expand from the same committed circuit state) and
//! then diverge under per-lane primary-input sequences.
//!
//! Per-lane switching activity is computed with bit-sliced vertical
//! counters, so the cost per cycle is `O(nodes · log nodes / 64)` words of
//! work for all lanes together, and the resulting per-lane values are
//! bit-identical to the scalar [`crate::seq::SeqSim`] (`toggles as f64 /
//! num_nodes as f64`, undefined on the first cycle after a state load).
//!
//! # Example
//!
//! ```
//! use fbt_netlist::s27;
//! use fbt_sim::{lanes::LaneSeqSim, Bits};
//!
//! let net = s27();
//! let mut sim = LaneSeqSim::new(&net, 2);
//! sim.broadcast_state(&Bits::zeros(3));
//! let pis = [Bits::from_str01("0000"), Bits::from_str01("1111")];
//! sim.step(&pis, None);
//! assert_eq!(sim.lane_state(0).to_string(), "001");
//! assert!(sim.swa().is_none(), "SWA(0) undefined");
//! ```

use fbt_netlist::Netlist;

use crate::comb;
use crate::Bits;

/// Extract one lane of a packed word vector as a [`Bits`] value.
pub fn extract_lane(words: &[u64], lane: usize) -> Bits {
    assert!(lane < 64, "lane out of range");
    words.iter().map(|w| (w >> lane) & 1 == 1).collect()
}

/// A bit-parallel sequential simulator evaluating up to 64 independent
/// input sequences ("lanes") against the same netlist in lockstep.
///
/// Unlike [`crate::seq::SeqSim`] this simulator performs **no per-cycle
/// heap allocation**: the value buffers are double-buffered and the
/// switching-activity counters are reused, which is what makes speculative
/// candidate expansion cheaper than one scalar pass per candidate even
/// before fault simulation enters the picture.
#[derive(Debug, Clone)]
pub struct LaneSeqSim<'a> {
    net: &'a Netlist,
    prog: comb::CompiledEval,
    lanes: usize,
    state: Vec<u64>,
    vals: Vec<u64>,
    prev_vals: Vec<u64>,
    have_prev: bool,
    /// Vertical ripple-carry counters: `counters[k]` holds bit `k` of every
    /// lane's toggle count for the current cycle.
    counters: Vec<u64>,
    swa: Vec<f64>,
    swa_ready: bool,
    out_words: Vec<u64>,
}

impl<'a> LaneSeqSim<'a> {
    /// Create a simulator for `lanes` concurrent trajectories (1..=64).
    /// The state is all-zero until [`LaneSeqSim::broadcast_state`] is
    /// called.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or greater than 64.
    pub fn new(net: &'a Netlist, lanes: usize) -> Self {
        assert!((1..=64).contains(&lanes), "lanes must be in 1..=64");
        // Enough vertical counter bits to count a toggle on every node.
        let levels = (usize::BITS - net.num_nodes().leading_zeros()) as usize;
        LaneSeqSim {
            net,
            prog: comb::CompiledEval::new(net),
            lanes,
            state: vec![0; net.num_dffs()],
            vals: vec![0; net.num_nodes()],
            prev_vals: vec![0; net.num_nodes()],
            have_prev: false,
            counters: vec![0; levels],
            swa: vec![0.0; lanes],
            swa_ready: false,
            out_words: vec![0; net.num_outputs()],
        }
    }

    /// Number of active lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Set every lane's state to `s` and clear the switching-activity
    /// history (like [`crate::seq::SeqSim::set_state`]).
    ///
    /// # Panics
    ///
    /// Panics if the width does not match.
    pub fn broadcast_state(&mut self, s: &Bits) {
        assert_eq!(s.len(), self.net.num_dffs(), "state width mismatch");
        let mask = lanes_mask(self.lanes);
        for (i, w) in self.state.iter_mut().enumerate() {
            *w = if s.get(i) { mask } else { 0 };
        }
        self.have_prev = false;
        self.swa_ready = false;
    }

    /// The packed present-state words, one per flip-flop; bit `l` is lane
    /// `l`'s state bit.
    pub fn state_words(&self) -> &[u64] {
        &self.state
    }

    /// Lane `l`'s present state.
    pub fn lane_state(&self, lane: usize) -> Bits {
        assert!(lane < self.lanes, "lane out of range");
        extract_lane(&self.state, lane)
    }

    /// The packed primary-output words of the most recent cycle.
    pub fn output_words(&self) -> &[u64] {
        &self.out_words
    }

    /// Per-lane switching activity of the most recent cycle, or `None` if
    /// it was the first cycle after construction or a state load.
    pub fn swa(&self) -> Option<&[f64]> {
        self.swa_ready.then_some(&self.swa[..])
    }

    /// Apply one clock cycle with lane `l` driven by `pis[l]`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches or if `pis.len() != self.lanes()`.
    pub fn step(&mut self, pis: &[Bits], hold: Option<&Bits>) {
        assert_eq!(pis.len(), self.lanes, "one PI vector per lane");
        self.step_with(|l| &pis[l], hold);
    }

    /// Apply one clock cycle, fetching lane `l`'s input vector via
    /// `pi_of(l)`. Flip-flops whose bit is set in `hold` keep their present
    /// value in **every** lane (the state-holding schedule of the paper's
    /// Section 4.5 depends only on the cycle index, so it is shared).
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn step_with<'b>(&mut self, pi_of: impl Fn(usize) -> &'b Bits, hold: Option<&Bits>) {
        let net = self.net;
        if let Some(h) = hold {
            assert_eq!(h.len(), net.num_dffs(), "hold mask width mismatch");
        }
        for &id in net.inputs() {
            self.vals[id.index()] = 0;
        }
        let inputs = net.inputs();
        for l in 0..self.lanes {
            let pi = pi_of(l);
            assert_eq!(pi.len(), net.num_inputs(), "PI width mismatch");
            let bit = 1u64 << l;
            // Walk only the set bits of each PI word instead of probing
            // every input through a bounds-checked `get`.
            for (wi, &w) in pi.words().iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let i = wi * 64 + bits.trailing_zeros() as usize;
                    self.vals[inputs[i].index()] |= bit;
                    bits &= bits - 1;
                }
            }
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            self.vals[id.index()] = self.state[i];
        }
        self.prog.eval(&mut self.vals);

        if self.have_prev {
            self.count_toggles();
            let nodes = net.num_nodes() as f64;
            for l in 0..self.lanes {
                let mut count = 0usize;
                for (k, &c) in self.counters.iter().enumerate() {
                    count |= (((c >> l) & 1) as usize) << k;
                }
                self.swa[l] = count as f64 / nodes;
            }
            self.swa_ready = true;
        } else {
            self.swa_ready = false;
        }

        for (w, &o) in self.out_words.iter_mut().zip(net.outputs()) {
            *w = self.vals[o.index()];
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            if hold.is_some_and(|h| h.get(i)) {
                continue; // held flip-flop keeps its state word
            }
            self.state[i] = self.vals[net.node(id).fanins()[0].index()];
        }
        std::mem::swap(&mut self.prev_vals, &mut self.vals);
        self.have_prev = true;
    }

    /// Accumulate `prev_vals ^ vals` into the vertical counters: after the
    /// loop, lane `l`'s toggle count is `Σ_k ((counters[k] >> l) & 1) << k`.
    ///
    /// Toggle words are folded four at a time through carry-save adders
    /// (exact: `s + 2c` preserves the column sums), so only every fourth
    /// node reaches the rippled counter levels above `twos`.
    fn count_toggles(&mut self) {
        #[inline]
        fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
            let u = a ^ b;
            (u ^ c, (a & b) | (u & c))
        }
        for c in &mut self.counters {
            *c = 0;
        }
        let (mut ones, mut twos) = (0u64, 0u64);
        let high = if self.counters.len() >= 2 {
            &mut self.counters[2..]
        } else {
            &mut []
        };
        for (p4, v4) in self
            .prev_vals
            .chunks_exact(4)
            .zip(self.vals.chunks_exact(4))
        {
            let (s1, c1) = csa(p4[0] ^ v4[0], p4[1] ^ v4[1], p4[2] ^ v4[2]);
            let (s2, c2) = csa(s1, p4[3] ^ v4[3], ones);
            ones = s2;
            let (s3, mut carry) = csa(c1, c2, twos);
            twos = s3;
            for c in high.iter_mut() {
                if carry == 0 {
                    break;
                }
                let next = *c & carry;
                *c ^= carry;
                carry = next;
            }
            debug_assert_eq!(carry, 0, "toggle counter overflow");
        }
        let tail = self.prev_vals.len() - self.prev_vals.len() % 4;
        for (p, v) in self.prev_vals[tail..].iter().zip(&self.vals[tail..]) {
            let mut carry = p ^ v;
            let next = ones & carry;
            ones ^= carry;
            carry = next;
            let next = twos & carry;
            twos ^= carry;
            carry = next;
            for c in high.iter_mut() {
                if carry == 0 {
                    break;
                }
                let next = *c & carry;
                *c ^= carry;
                carry = next;
            }
            debug_assert_eq!(carry, 0, "toggle counter overflow");
        }
        if let [c0, c1, ..] = &mut self.counters[..] {
            *c0 = ones;
            *c1 = twos;
        } else if let [c0] = &mut self.counters[..] {
            *c0 = ones;
            debug_assert_eq!(twos, 0, "toggle counter overflow");
        }
    }
}

fn lanes_mask(lanes: usize) -> u64 {
    if lanes == 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqSim;
    use fbt_netlist::rng::Rng;
    use fbt_netlist::s27;
    use fbt_netlist::synth::{self, CircuitSpec};

    fn random_bits(n: usize, rng: &mut Rng) -> Bits {
        (0..n).map(|_| rng.bit()).collect()
    }

    fn nets() -> Vec<Netlist> {
        let mut nets = vec![s27()];
        let mut rng = Rng::new(0x1A9E5);
        for _ in 0..3 {
            let pi = 2 + (rng.next_u64() % 5) as usize;
            let po = 1 + (rng.next_u64() % 3) as usize;
            let ff = 2 + (rng.next_u64() % 8) as usize;
            let gates = 15 + (rng.next_u64() % 90) as usize;
            let mut spec = CircuitSpec::new("lane", pi, po, ff, gates);
            spec.seed = rng.next_u64();
            nets.push(synth::generate(&spec));
        }
        nets
    }

    #[test]
    fn lanes_match_scalar_seqsim_bit_exactly() {
        let mut rng = Rng::new(7);
        for net in nets() {
            for lanes in [1usize, 7, 64] {
                let cycles = 12;
                let start = random_bits(net.num_dffs(), &mut rng);
                // Lane-major input sequences, plus a shared hold schedule.
                let pis: Vec<Vec<Bits>> = (0..lanes)
                    .map(|_| {
                        (0..cycles)
                            .map(|_| random_bits(net.num_inputs(), &mut rng))
                            .collect()
                    })
                    .collect();
                let holds: Vec<Option<Bits>> = (0..cycles)
                    .map(|c| (c % 3 == 1).then(|| random_bits(net.num_dffs(), &mut rng)))
                    .collect();

                let mut packed = LaneSeqSim::new(&net, lanes);
                packed.broadcast_state(&start);
                let mut scalars: Vec<SeqSim<'_>> =
                    (0..lanes).map(|_| SeqSim::new(&net, &start)).collect();

                for c in 0..cycles {
                    packed.step_with(|l| &pis[l][c], holds[c].as_ref());
                    let swa = packed.swa();
                    assert_eq!(swa.is_some(), c > 0, "SWA defined from cycle 1");
                    for (l, scalar) in scalars.iter_mut().enumerate() {
                        let r = scalar.step_holding(&pis[l][c], holds[c].as_ref());
                        assert_eq!(
                            packed.lane_state(l),
                            r.next_state,
                            "{} lanes={lanes} cycle={c} lane={l}",
                            net.name()
                        );
                        assert_eq!(
                            extract_lane(packed.output_words(), l),
                            r.outputs,
                            "{} outputs lane {l}",
                            net.name()
                        );
                        match (swa, r.switching_activity) {
                            (Some(s), Some(expect)) => assert_eq!(
                                s[l],
                                expect,
                                "{} swa lanes={lanes} cycle={c} lane={l}",
                                net.name()
                            ),
                            (None, None) => {}
                            (a, b) => panic!("swa definedness mismatch: {a:?} vs {b:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn broadcast_state_resets_swa_history() {
        let net = s27();
        let mut sim = LaneSeqSim::new(&net, 3);
        sim.broadcast_state(&Bits::zeros(3));
        let pis = vec![Bits::from_str01("0101"); 3];
        sim.step(&pis, None);
        sim.step(&pis, None);
        assert!(sim.swa().is_some());
        sim.broadcast_state(&Bits::from_str01("111"));
        sim.step(&pis, None);
        assert!(sim.swa().is_none(), "history cleared by state load");
    }

    #[test]
    fn toggle_counters_handle_full_flip() {
        // Force a cycle where every node toggles in one lane and none in the
        // other: counts must be exact at both extremes.
        let net = s27();
        let mut sim = LaneSeqSim::new(&net, 2);
        sim.broadcast_state(&Bits::zeros(3));
        // Hold the state through both cycles so lane 0 (constant inputs)
        // repeats the identical cycle exactly.
        let hold = Bits::from_bools(&[true, true, true]);
        let a = [Bits::from_str01("0000"), Bits::from_str01("0000")];
        sim.step(&a, Some(&hold));
        let b = [Bits::from_str01("0000"), Bits::from_str01("1111")];
        sim.step(&b, Some(&hold));
        let swa = sim.swa().unwrap();
        assert_eq!(swa[0], 0.0, "identical cycle has zero activity");
        assert!(swa[1] > 0.0);
    }
}
