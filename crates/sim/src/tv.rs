//! Three-valued (0 / 1 / X) logic and scalar simulation.
//!
//! Used where unspecified values matter: primary-input cube computation
//! (paper §4.3), necessary assignments (§2.3.2, §3.2) and case analysis
//! (§3.3.1).

use fbt_netlist::{GateKind, Netlist};

/// A three-valued logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Trit {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / unspecified.
    #[default]
    X,
}

impl Trit {
    /// Construct from a boolean.
    #[inline]
    pub fn from_bool(b: bool) -> Trit {
        if b {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// The binary value, if specified.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// Whether the value is specified (not X).
    #[inline]
    pub fn is_specified(self) -> bool {
        self != Trit::X
    }

    /// Three-valued negation.
    ///
    /// Deliberately an inherent method (not `std::ops::Not`): `!trit` on a
    /// three-valued logic type reads ambiguously at call sites.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Trit {
        match self {
            Trit::Zero => Trit::One,
            Trit::One => Trit::Zero,
            Trit::X => Trit::X,
        }
    }

    /// Whether `self` is consistent with (refines or equals) `other`:
    /// `X` is consistent with anything; specified values must match.
    #[inline]
    pub fn compatible(self, other: Trit) -> bool {
        self == Trit::X || other == Trit::X || self == other
    }
}

/// Evaluate a gate kind over three-valued fanins.
///
/// Controlling values dominate X: e.g. `AND(0, X) = 0`, `AND(1, X) = X`.
///
/// # Panics
///
/// Panics for source kinds.
pub fn eval_gate_tv(kind: GateKind, fanins: impl Iterator<Item = Trit>) -> Trit {
    match kind {
        GateKind::And | GateKind::Nand => {
            let mut any_x = false;
            let mut any_zero = false;
            for v in fanins {
                match v {
                    Trit::Zero => any_zero = true,
                    Trit::X => any_x = true,
                    Trit::One => {}
                }
            }
            let out = if any_zero {
                Trit::Zero
            } else if any_x {
                Trit::X
            } else {
                Trit::One
            };
            if kind == GateKind::Nand {
                out.not()
            } else {
                out
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut any_x = false;
            let mut any_one = false;
            for v in fanins {
                match v {
                    Trit::One => any_one = true,
                    Trit::X => any_x = true,
                    Trit::Zero => {}
                }
            }
            let out = if any_one {
                Trit::One
            } else if any_x {
                Trit::X
            } else {
                Trit::Zero
            };
            if kind == GateKind::Nor {
                out.not()
            } else {
                out
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = Trit::Zero;
            for v in fanins {
                acc = match (acc, v) {
                    (Trit::X, _) | (_, Trit::X) => Trit::X,
                    (a, b) => Trit::from_bool(a.to_bool().unwrap() ^ b.to_bool().unwrap()),
                };
                if acc == Trit::X {
                    return Trit::X; // X is absorbing for XOR chains
                }
            }
            if kind == GateKind::Xnor {
                acc.not()
            } else {
                acc
            }
        }
        GateKind::Not => fanins.into_iter().next().expect("NOT fanin").not(),
        GateKind::Buf => fanins.into_iter().next().expect("BUF fanin"),
        GateKind::Input | GateKind::Dff => unreachable!("sources are not evaluated"),
    }
}

/// Scalar three-valued evaluation of the combinational logic; sources
/// pre-filled in `vals`.
///
/// # Panics
///
/// Panics if `vals.len() != net.num_nodes()`.
pub fn eval_tv(net: &Netlist, vals: &mut [Trit]) {
    assert_eq!(vals.len(), net.num_nodes(), "value buffer size mismatch");
    for &id in net.eval_order() {
        let node = net.node(id);
        vals[id.index()] = eval_gate_tv(node.kind(), node.fanins().iter().map(|f| vals[f.index()]));
    }
}

/// Fully three-valued one-frame simulation: apply `pi` (possibly partial)
/// with present state `state` (possibly partial); return the value of every
/// node plus the next-state trits.
///
/// # Panics
///
/// Panics on width mismatches.
pub fn simulate_frame_tv(net: &Netlist, pi: &[Trit], state: &[Trit]) -> (Vec<Trit>, Vec<Trit>) {
    assert_eq!(pi.len(), net.num_inputs(), "PI width mismatch");
    assert_eq!(state.len(), net.num_dffs(), "state width mismatch");
    let mut vals = vec![Trit::X; net.num_nodes()];
    for (v, &id) in pi.iter().zip(net.inputs()) {
        vals[id.index()] = *v;
    }
    for (v, &id) in state.iter().zip(net.dffs()) {
        vals[id.index()] = *v;
    }
    eval_tv(net, &mut vals);
    let next: Vec<Trit> = net
        .dffs()
        .iter()
        .map(|&d| vals[net.node(d).fanins()[0].index()])
        .collect();
    (vals, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    #[test]
    fn controlling_values_dominate_x() {
        use GateKind::*;
        assert_eq!(
            eval_gate_tv(And, [Trit::Zero, Trit::X].into_iter()),
            Trit::Zero
        );
        assert_eq!(eval_gate_tv(And, [Trit::One, Trit::X].into_iter()), Trit::X);
        assert_eq!(
            eval_gate_tv(Nand, [Trit::Zero, Trit::X].into_iter()),
            Trit::One
        );
        assert_eq!(
            eval_gate_tv(Or, [Trit::One, Trit::X].into_iter()),
            Trit::One
        );
        assert_eq!(
            eval_gate_tv(Nor, [Trit::One, Trit::X].into_iter()),
            Trit::Zero
        );
        assert_eq!(eval_gate_tv(Xor, [Trit::One, Trit::X].into_iter()), Trit::X);
        assert_eq!(eval_gate_tv(Not, [Trit::X].into_iter()), Trit::X);
    }

    #[test]
    fn tv_refines_to_binary_sim() {
        // With fully specified sources, 3-valued simulation must equal
        // 2-valued simulation on every node.
        let net = s27();
        for combo in 0..128u32 {
            let pi_b: Vec<bool> = (0..4).map(|b| (combo >> b) & 1 == 1).collect();
            let st_b: Vec<bool> = (0..3).map(|b| (combo >> (4 + b)) & 1 == 1).collect();
            let pi_t: Vec<Trit> = pi_b.iter().map(|&b| Trit::from_bool(b)).collect();
            let st_t: Vec<Trit> = st_b.iter().map(|&b| Trit::from_bool(b)).collect();
            let (tvals, _) = simulate_frame_tv(&net, &pi_t, &st_t);

            let mut bvals = vec![false; net.num_nodes()];
            for (v, &id) in pi_b.iter().zip(net.inputs()) {
                bvals[id.index()] = *v;
            }
            for (v, &id) in st_b.iter().zip(net.dffs()) {
                bvals[id.index()] = *v;
            }
            crate::comb::eval_scalar(&net, &mut bvals);
            for id in net.node_ids() {
                assert_eq!(
                    tvals[id.index()],
                    Trit::from_bool(bvals[id.index()]),
                    "node {} combo {combo}",
                    net.node_name(id)
                );
            }
        }
    }

    #[test]
    fn x_monotonicity_on_s27() {
        // Replacing any single specified source with X never produces a
        // conflicting specified value: if the X-run says 1/0, the fully
        // specified run must agree.
        let net = s27();
        for combo in 0..128u32 {
            let pi_b: Vec<Trit> = (0..4)
                .map(|b| Trit::from_bool((combo >> b) & 1 == 1))
                .collect();
            let st_b: Vec<Trit> = (0..3)
                .map(|b| Trit::from_bool((combo >> (4 + b)) & 1 == 1))
                .collect();
            let (full, _) = simulate_frame_tv(&net, &pi_b, &st_b);
            for xed in 0..7 {
                let mut pi = pi_b.clone();
                let mut st = st_b.clone();
                if xed < 4 {
                    pi[xed] = Trit::X;
                } else {
                    st[xed - 4] = Trit::X;
                }
                let (partial, _) = simulate_frame_tv(&net, &pi, &st);
                for id in net.node_ids() {
                    let p = partial[id.index()];
                    if p.is_specified() {
                        assert_eq!(
                            p,
                            full[id.index()],
                            "X-monotonicity at {}",
                            net.node_name(id)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn compatibility() {
        assert!(Trit::X.compatible(Trit::One));
        assert!(Trit::Zero.compatible(Trit::X));
        assert!(Trit::One.compatible(Trit::One));
        assert!(!Trit::One.compatible(Trit::Zero));
    }
}
