//! Sequential (cycle-by-cycle) simulation of a netlist in functional mode.

use fbt_netlist::Netlist;

use crate::comb;
use crate::Bits;

/// A scalar sequential simulator holding the circuit's current state and the
/// full value vector of the previous cycle (for switching-activity
/// measurement).
///
/// Functional operation per the paper's Section 4.3: at each clock cycle the
/// primary-input vector `p(i)` is applied while the circuit is in state
/// `s(i)`; the flip-flops then capture the next state `s(i+1)`.
///
/// # Example
///
/// ```
/// use fbt_netlist::s27;
/// use fbt_sim::{seq::SeqSim, Bits};
///
/// let net = s27();
/// let mut sim = SeqSim::new(&net, &Bits::zeros(3));
/// let step = sim.step(&Bits::from_str01("0000"));
/// assert_eq!(step.next_state.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SeqSim<'a> {
    net: &'a Netlist,
    state: Bits,
    vals: Vec<bool>,
    prev_vals: Option<Vec<bool>>,
}

/// The observable results of one clock cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// The state captured by the flip-flops at the end of the cycle.
    pub next_state: Bits,
    /// Primary-output values during the cycle.
    pub outputs: Bits,
    /// Fraction of lines (all nodes) whose value changed relative to the
    /// previous cycle; `None` on the first cycle after construction or a
    /// state reset (the paper leaves `SWA(0)` undefined).
    pub switching_activity: Option<f64>,
}

impl<'a> SeqSim<'a> {
    /// Create a simulator with the given initial state.
    ///
    /// # Panics
    ///
    /// Panics if `initial_state.len() != net.num_dffs()`.
    pub fn new(net: &'a Netlist, initial_state: &Bits) -> Self {
        assert_eq!(initial_state.len(), net.num_dffs(), "state width mismatch");
        SeqSim {
            net,
            state: initial_state.clone(),
            vals: vec![false; net.num_nodes()],
            prev_vals: None,
        }
    }

    /// The circuit's current state.
    pub fn state(&self) -> &Bits {
        &self.state
    }

    /// Force the state (e.g. scan-in); clears switching-activity history.
    ///
    /// # Panics
    ///
    /// Panics if the width does not match.
    pub fn set_state(&mut self, state: &Bits) {
        assert_eq!(state.len(), self.net.num_dffs(), "state width mismatch");
        self.state = state.clone();
        self.prev_vals = None;
    }

    /// Hold the listed flip-flops (by position in `net.dffs()` order) during
    /// the *next* [`SeqSim::step_holding`] call: they keep their present value
    /// instead of capturing. Implemented by the caller passing the mask.
    ///
    /// Apply one functional clock cycle with input vector `pi`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != net.num_inputs()`.
    pub fn step(&mut self, pi: &Bits) -> StepResult {
        self.step_holding(pi, None)
    }

    /// Apply one clock cycle; flip-flops whose bit is set in `hold` do not
    /// capture and keep their present value (the state-holding DFT of the
    /// paper's Section 4.5, Fig. 4.10).
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn step_holding(&mut self, pi: &Bits, hold: Option<&Bits>) -> StepResult {
        let net = self.net;
        assert_eq!(pi.len(), net.num_inputs(), "PI width mismatch");
        if let Some(h) = hold {
            assert_eq!(h.len(), net.num_dffs(), "hold mask width mismatch");
        }
        for (i, &id) in net.inputs().iter().enumerate() {
            self.vals[id.index()] = pi.get(i);
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            self.vals[id.index()] = self.state.get(i);
        }
        comb::eval_scalar(net, &mut self.vals);

        let switching_activity = self.prev_vals.as_ref().map(|prev| {
            let toggles = prev.iter().zip(&self.vals).filter(|(a, b)| a != b).count();
            toggles as f64 / net.num_nodes() as f64
        });

        let mut next_state = Bits::zeros(net.num_dffs());
        for (i, &id) in net.dffs().iter().enumerate() {
            let captured = if hold.is_some_and(|h| h.get(i)) {
                self.state.get(i)
            } else {
                self.vals[net.node(id).fanins()[0].index()]
            };
            next_state.set(i, captured);
        }
        let outputs: Bits = net
            .outputs()
            .iter()
            .map(|&o| self.vals[o.index()])
            .collect();

        self.prev_vals = Some(self.vals.clone());
        self.state = next_state.clone();
        StepResult {
            next_state,
            outputs,
            switching_activity,
        }
    }
}

/// A recorded functional trajectory: the state sequence `s(0), s(1), …, s(L)`
/// traversed under a primary-input sequence `p(0), …, p(L-1)` (paper §4.3),
/// with per-cycle switching activity.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// `states[i]` is `s(i)`; has length `L + 1`.
    pub states: Vec<Bits>,
    /// Primary outputs observed at each cycle; length `L`.
    pub outputs: Vec<Bits>,
    /// `swa[i]` is the switching activity during clock cycle `i`
    /// (`SWA(0)` is undefined and stored as `None`); length `L`.
    pub swa: Vec<Option<f64>>,
}

impl Trajectory {
    /// The peak defined switching activity along the trajectory, or 0.0 if
    /// none is defined.
    pub fn peak_swa(&self) -> f64 {
        self.swa.iter().flatten().fold(0.0f64, |a, &b| a.max(b))
    }
}

/// Simulate the input sequence from `initial_state` and record the
/// trajectory.
///
/// # Panics
///
/// Panics on width mismatches.
pub fn simulate_sequence(net: &Netlist, initial_state: &Bits, pis: &[Bits]) -> Trajectory {
    let mut sim = SeqSim::new(net, initial_state);
    let mut states = Vec::with_capacity(pis.len() + 1);
    let mut outputs = Vec::with_capacity(pis.len());
    let mut swa = Vec::with_capacity(pis.len());
    states.push(initial_state.clone());
    for pi in pis {
        let r = sim.step(pi);
        states.push(r.next_state);
        outputs.push(r.outputs);
        swa.push(r.switching_activity);
    }
    Trajectory {
        states,
        outputs,
        swa,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    #[test]
    fn s27_next_state_from_zero() {
        let net = s27();
        let mut sim = SeqSim::new(&net, &Bits::zeros(3));
        let r = sim.step(&Bits::from_str01("0000"));
        // From the comb test: G10=0, G11=0, G13=1 -> next state 001.
        assert_eq!(r.next_state.to_string(), "001");
        assert_eq!(r.outputs.to_string(), "1");
        assert!(r.switching_activity.is_none(), "SWA(0) undefined");
    }

    #[test]
    fn swa_defined_from_second_cycle() {
        let net = s27();
        let mut sim = SeqSim::new(&net, &Bits::zeros(3));
        sim.step(&Bits::from_str01("0000"));
        let r = sim.step(&Bits::from_str01("1111"));
        let swa = r.switching_activity.unwrap();
        assert!(swa > 0.0 && swa <= 1.0);
    }

    #[test]
    fn identical_cycles_have_zero_swa() {
        let net = s27();
        let mut sim = SeqSim::new(&net, &Bits::zeros(3));
        // Drive to a fixed point under constant inputs, then check SWA = 0.
        let pi = Bits::from_str01("0000");
        let mut last = None;
        for _ in 0..8 {
            last = Some(sim.step(&pi));
        }
        // s27 under constant 0 input reaches a cycle; if the state repeats
        // exactly, all node values repeat and SWA is 0.
        let state_before = sim.state().clone();
        let r = sim.step(&pi);
        if r.next_state == state_before {
            assert_eq!(r.switching_activity, Some(0.0));
        }
        let _ = last;
    }

    #[test]
    fn holding_keeps_flip_flop_values() {
        let net = s27();
        let mut sim = SeqSim::new(&net, &Bits::from_str01("101"));
        let mut hold = Bits::zeros(3);
        hold.set(0, true);
        hold.set(2, true);
        let r = sim.step_holding(&Bits::from_str01("0110"), Some(&hold));
        assert!(r.next_state.get(0), "held FF keeps 1");
        assert!(r.next_state.get(2), "held FF keeps 1");
    }

    #[test]
    fn trajectory_records_all_states() {
        let net = s27();
        let pis: Vec<Bits> = (0..5)
            .map(|i| Bits::from_bools(&[(i & 1) == 1, false, true, false]))
            .collect();
        let t = simulate_sequence(&net, &Bits::zeros(3), &pis);
        assert_eq!(t.states.len(), 6);
        assert_eq!(t.outputs.len(), 5);
        assert_eq!(t.swa.len(), 5);
        assert!(t.swa[0].is_none());
        assert!(t.swa[1..].iter().all(Option::is_some));
        assert!(t.peak_swa() <= 1.0);
    }

    #[test]
    fn set_state_resets_swa_history() {
        let net = s27();
        let mut sim = SeqSim::new(&net, &Bits::zeros(3));
        sim.step(&Bits::from_str01("0000"));
        sim.set_state(&Bits::from_str01("111"));
        let r = sim.step(&Bits::from_str01("0000"));
        assert!(r.switching_activity.is_none());
    }
}
