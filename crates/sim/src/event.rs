//! Event-driven combinational simulation.
//!
//! The levelized full-pass evaluators in [`crate::comb`] recompute every
//! gate; when only a few sources change between cycles (the common case in
//! long functional sequences — the paper's SWAfunc estimation simulates
//! 30 × 30 000 cycles), an event-driven sweep touches only the affected
//! cones. Results are bit-identical to the full pass (property-tested).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fbt_netlist::{Netlist, NodeId};

use crate::comb;
use crate::Bits;

/// An incremental single-pattern simulator holding the current value of
/// every node.
#[derive(Debug, Clone)]
pub struct EventSim<'a> {
    net: &'a Netlist,
    vals: Vec<bool>,
    /// Scheduled flag per node (avoids duplicate queue entries).
    scheduled: Vec<bool>,
}

impl<'a> EventSim<'a> {
    /// Create a simulator with all sources at 0 and gates settled.
    pub fn new(net: &'a Netlist) -> Self {
        let mut vals = vec![false; net.num_nodes()];
        comb::eval_scalar(net, &mut vals);
        EventSim {
            net,
            vals,
            scheduled: vec![false; net.num_nodes()],
        }
    }

    /// Current value of a node.
    #[inline]
    pub fn value(&self, node: NodeId) -> bool {
        self.vals[node.index()]
    }

    /// All current values (indexed by node).
    pub fn values(&self) -> &[bool] {
        &self.vals
    }

    /// Apply a new primary-input vector and present state; propagate only
    /// the changes. Returns the number of nodes that changed value.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn apply(&mut self, pi: &Bits, state: &Bits) -> usize {
        let net = self.net;
        assert_eq!(pi.len(), net.num_inputs(), "PI width mismatch");
        assert_eq!(state.len(), net.num_dffs(), "state width mismatch");
        // Min-heap of (level, node): gates evaluate only after all their
        // potentially-changed fanins at lower levels settled.
        let mut queue: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        let mut changed = 0usize;
        let touch_sources = |sim: &mut Self,
                             id: NodeId,
                             v: bool,
                             queue: &mut BinaryHeap<Reverse<(u32, u32)>>,
                             changed: &mut usize| {
            if sim.vals[id.index()] != v {
                sim.vals[id.index()] = v;
                *changed += 1;
                for &fo in sim.net.node(id).fanouts() {
                    if sim.net.node(fo).kind().is_source() {
                        continue;
                    }
                    if !sim.scheduled[fo.index()] {
                        sim.scheduled[fo.index()] = true;
                        queue.push(Reverse((sim.net.level(fo), fo.0)));
                    }
                }
            }
        };
        for (i, &id) in net.inputs().iter().enumerate() {
            touch_sources(self, id, pi.get(i), &mut queue, &mut changed);
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            touch_sources(self, id, state.get(i), &mut queue, &mut changed);
        }
        while let Some(Reverse((_, raw))) = queue.pop() {
            let id = NodeId(raw);
            self.scheduled[id.index()] = false;
            let node = net.node(id);
            let ins: Vec<bool> = node.fanins().iter().map(|f| self.vals[f.index()]).collect();
            let v = node.kind().eval(&ins);
            if v != self.vals[id.index()] {
                self.vals[id.index()] = v;
                changed += 1;
                for &fo in node.fanouts() {
                    if net.node(fo).kind().is_source() {
                        continue;
                    }
                    if !self.scheduled[fo.index()] {
                        self.scheduled[fo.index()] = true;
                        queue.push(Reverse((net.level(fo), fo.0)));
                    }
                }
            }
        }
        changed
    }

    /// The next-state vector under the current values.
    pub fn next_state(&self) -> Bits {
        self.net
            .dffs()
            .iter()
            .map(|&d| self.vals[self.net.node(d).fanins()[0].index()])
            .collect()
    }

    /// The primary-output vector under the current values.
    pub fn outputs(&self) -> Bits {
        self.net
            .outputs()
            .iter()
            .map(|&o| self.vals[o.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::rng::Rng;
    use fbt_netlist::{s27, synth};

    fn reference(net: &Netlist, pi: &Bits, state: &Bits) -> Vec<bool> {
        let mut vals = vec![false; net.num_nodes()];
        for (i, &id) in net.inputs().iter().enumerate() {
            vals[id.index()] = pi.get(i);
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            vals[id.index()] = state.get(i);
        }
        comb::eval_scalar(net, &mut vals);
        vals
    }

    #[test]
    fn matches_full_pass_on_random_sequences() {
        for name in ["s298", "s953"] {
            let net = synth::generate(&synth::find(name).unwrap().scaled(4));
            let mut sim = EventSim::new(&net);
            let mut rng = Rng::new(21);
            let mut state = Bits::zeros(net.num_dffs());
            for _ in 0..50 {
                let pi: Bits = (0..net.num_inputs()).map(|_| rng.bit()).collect();
                sim.apply(&pi, &state);
                let want = reference(&net, &pi, &state);
                assert_eq!(sim.values(), &want[..], "{name}");
                state = sim.next_state();
            }
        }
    }

    #[test]
    fn no_change_means_zero_events() {
        let net = s27();
        let mut sim = EventSim::new(&net);
        let pi = Bits::from_str01("0110");
        let st = Bits::from_str01("010");
        sim.apply(&pi, &st);
        assert_eq!(sim.apply(&pi, &st), 0, "same inputs: nothing changes");
    }

    #[test]
    fn single_input_flip_touches_only_its_cone() {
        let net = s27();
        let mut sim = EventSim::new(&net);
        sim.apply(&Bits::from_str01("0000"), &Bits::from_str01("000"));
        // Flip G1 only: its cone is G12-G13-G15-G9-... bounded by the cone
        // size of G1.
        let changed = sim.apply(&Bits::from_str01("0100"), &Bits::from_str01("000"));
        let g1 = net.find("G1").unwrap();
        let cone = net.fanout_cone(g1);
        assert!(changed <= cone.len(), "{changed} > cone {}", cone.len());
        assert!(changed >= 1);
    }

    #[test]
    fn glitch_free_under_reconvergence() {
        // The level-ordered queue evaluates each gate once per settled
        // wavefront: outputs match the full pass even through reconvergent
        // fanout (already covered by the equality test, asserted again on
        // the classic reconvergent structure in s27's G15/G16 pair).
        let net = s27();
        let mut sim = EventSim::new(&net);
        let mut rng = Rng::new(3);
        for _ in 0..200 {
            let pi: Bits = (0..4).map(|_| rng.bit()).collect();
            let st: Bits = (0..3).map(|_| rng.bit()).collect();
            sim.apply(&pi, &st);
            assert_eq!(sim.values(), &reference(&net, &pi, &st)[..]);
        }
    }
}
