//! Combinational evaluation (scalar and 64-way bit-parallel).

use fbt_netlist::{GateKind, Netlist, NodeId};

/// Evaluate one gate over packed 64-pattern words.
#[inline]
fn eval_gate_packed(kind: GateKind, fanins: &[NodeId], vals: &[u64]) -> u64 {
    // Two-input gates dominate the benchmark netlists; evaluate them
    // without the iterator fold so the common case is two loads and one op.
    if let [a, b] = fanins {
        let (a, b) = (vals[a.index()], vals[b.index()]);
        match kind {
            GateKind::And => return a & b,
            GateKind::Nand => return !(a & b),
            GateKind::Or => return a | b,
            GateKind::Nor => return !(a | b),
            GateKind::Xor => return a ^ b,
            GateKind::Xnor => return !(a ^ b),
            _ => {}
        }
    }
    let mut it = fanins.iter().map(|f| vals[f.index()]);
    match kind {
        GateKind::And => it.fold(!0u64, |a, v| a & v),
        GateKind::Nand => !it.fold(!0u64, |a, v| a & v),
        GateKind::Or => it.fold(0u64, |a, v| a | v),
        GateKind::Nor => !it.fold(0u64, |a, v| a | v),
        GateKind::Xor => it.fold(0u64, |a, v| a ^ v),
        GateKind::Xnor => !it.fold(0u64, |a, v| a ^ v),
        GateKind::Not => !it.next().expect("NOT has a fanin"),
        GateKind::Buf => it.next().expect("BUF has a fanin"),
        GateKind::Input | GateKind::Dff => unreachable!("sources are not evaluated"),
    }
}

/// Evaluate the combinational logic with sources already written into `vals`.
///
/// `vals` is indexed by node id; each word carries 64 independent patterns.
/// Primary-input and flip-flop entries must be pre-filled by the caller; all
/// gate entries are overwritten in topological order.
///
/// # Panics
///
/// Panics if `vals.len() != net.num_nodes()`.
pub fn eval_packed(net: &Netlist, vals: &mut [u64]) {
    assert_eq!(vals.len(), net.num_nodes(), "value buffer size mismatch");
    for &id in net.eval_order() {
        let node = net.node(id);
        vals[id.index()] = eval_gate_packed(node.kind(), node.fanins(), vals);
    }
}

/// Re-evaluate only the gates in `cone` (a topologically ordered node list,
/// e.g. from [`fbt_netlist::Netlist::fanout_cone`]). Entries outside the cone
/// are untouched; source entries inside the cone are left as-is.
pub fn eval_packed_cone(net: &Netlist, cone: &[NodeId], vals: &mut [u64]) {
    for &id in cone {
        let node = net.node(id);
        if node.kind().is_source() {
            continue;
        }
        vals[id.index()] = eval_gate_packed(node.kind(), node.fanins(), vals);
    }
}

/// A netlist's combinational logic flattened into a branch-light op list.
///
/// [`eval_packed`] walks node metadata (kind, fanin list) through two pointer
/// indirections per gate per cycle. For the multi-lane sequential simulator
/// that walk dominates, so this pre-compiles the evaluation order once into a
/// flat array of fixed-size ops (the 1- and 2-input gates that dominate the
/// benchmark netlists) plus a fanin pool for wider gates. Evaluation is
/// bit-identical to [`eval_packed`]: same order, same operations.
#[derive(Debug, Clone)]
pub struct CompiledEval {
    ops: Vec<CompiledOp>,
    pool: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
struct CompiledOp {
    /// 0 And2, 1 Nand2, 2 Or2, 3 Nor2, 4 Xor2, 5 Xnor2, 6 Not, 7 Buf;
    /// `8 + k` = wide gate with the kind encoded as `k` (same order) whose
    /// fanins are `pool[a..a + b]`.
    code: u8,
    out: u32,
    a: u32,
    b: u32,
}

impl CompiledEval {
    /// Compile `net`'s evaluation order.
    pub fn new(net: &Netlist) -> Self {
        let kind_code = |kind: GateKind| -> u8 {
            match kind {
                GateKind::And => 0,
                GateKind::Nand => 1,
                GateKind::Or => 2,
                GateKind::Nor => 3,
                GateKind::Xor => 4,
                GateKind::Xnor => 5,
                GateKind::Not => 6,
                GateKind::Buf => 7,
                GateKind::Input | GateKind::Dff => unreachable!("sources are not evaluated"),
            }
        };
        let mut ops = Vec::with_capacity(net.eval_order().len());
        let mut pool: Vec<u32> = Vec::new();
        for &id in net.eval_order() {
            let node = net.node(id);
            let code = kind_code(node.kind());
            let out = id.index() as u32;
            let op = match node.fanins() {
                // NOT/BUF are the only 1-input kinds; other kinds keep the
                // fold path at any other arity (a 1-input AND folds to BUF
                // semantics there, matching `eval_gate_packed`).
                [a] if code >= 6 => CompiledOp {
                    code,
                    out,
                    a: a.index() as u32,
                    b: 0,
                },
                [a, b] if code < 6 => CompiledOp {
                    code,
                    out,
                    a: a.index() as u32,
                    b: b.index() as u32,
                },
                many => {
                    let start = pool.len() as u32;
                    pool.extend(many.iter().map(|f| f.index() as u32));
                    CompiledOp {
                        code: 8 + code,
                        out,
                        a: start,
                        b: many.len() as u32,
                    }
                }
            };
            ops.push(op);
        }
        CompiledEval { ops, pool }
    }

    /// Evaluate over packed 64-pattern words; sources pre-filled, gate
    /// entries overwritten in the compiled order.
    pub fn eval(&self, vals: &mut [u64]) {
        for op in &self.ops {
            let v = if op.code < 8 {
                let a = vals[op.a as usize];
                match op.code {
                    0 => a & vals[op.b as usize],
                    1 => !(a & vals[op.b as usize]),
                    2 => a | vals[op.b as usize],
                    3 => !(a | vals[op.b as usize]),
                    4 => a ^ vals[op.b as usize],
                    5 => !(a ^ vals[op.b as usize]),
                    6 => !a,
                    _ => a,
                }
            } else {
                let fanins = &self.pool[op.a as usize..(op.a + op.b) as usize];
                let mut it = fanins.iter().map(|&f| vals[f as usize]);
                match op.code - 8 {
                    0 => it.fold(!0u64, |a, v| a & v),
                    1 => !it.fold(!0u64, |a, v| a & v),
                    2 => it.fold(0u64, |a, v| a | v),
                    3 => !it.fold(0u64, |a, v| a | v),
                    4 => it.fold(0u64, |a, v| a ^ v),
                    5 => !it.fold(0u64, |a, v| a ^ v),
                    6 => !it.next().expect("NOT has a fanin"),
                    _ => it.next().expect("BUF has a fanin"),
                }
            };
            vals[op.out as usize] = v;
        }
    }
}

/// Scalar (single-pattern) evaluation over `bool`s; sources pre-filled.
///
/// # Panics
///
/// Panics if `vals.len() != net.num_nodes()`.
pub fn eval_scalar(net: &Netlist, vals: &mut [bool]) {
    assert_eq!(vals.len(), net.num_nodes(), "value buffer size mismatch");
    for &id in net.eval_order() {
        let node = net.node(id);
        let v = match node.kind() {
            GateKind::And => node.fanins().iter().all(|f| vals[f.index()]),
            GateKind::Nand => !node.fanins().iter().all(|f| vals[f.index()]),
            GateKind::Or => node.fanins().iter().any(|f| vals[f.index()]),
            GateKind::Nor => !node.fanins().iter().any(|f| vals[f.index()]),
            GateKind::Xor => node.fanins().iter().fold(false, |a, f| a ^ vals[f.index()]),
            GateKind::Xnor => !node.fanins().iter().fold(false, |a, f| a ^ vals[f.index()]),
            GateKind::Not => !vals[node.fanins()[0].index()],
            GateKind::Buf => vals[node.fanins()[0].index()],
            GateKind::Input | GateKind::Dff => continue,
        };
        vals[id.index()] = v;
    }
}

/// Write primary-input words and present-state words into a packed value
/// buffer (convenience for fault simulation set-up).
pub fn load_sources_packed(net: &Netlist, pi: &[u64], state: &[u64], vals: &mut [u64]) {
    assert_eq!(pi.len(), net.num_inputs(), "PI word count mismatch");
    assert_eq!(state.len(), net.num_dffs(), "state word count mismatch");
    for (w, &id) in pi.iter().zip(net.inputs()) {
        vals[id.index()] = *w;
    }
    for (w, &id) in state.iter().zip(net.dffs()) {
        vals[id.index()] = *w;
    }
}

/// Extract the next-state words (the values at each flip-flop's D input)
/// from an evaluated packed buffer.
pub fn next_state_packed(net: &Netlist, vals: &[u64]) -> Vec<u64> {
    net.dffs()
        .iter()
        .map(|&d| vals[net.node(d).fanins()[0].index()])
        .collect()
}

/// Extract the primary-output words from an evaluated packed buffer.
pub fn outputs_packed(net: &Netlist, vals: &[u64]) -> Vec<u64> {
    net.outputs().iter().map(|&o| vals[o.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    fn scalar_vals(net: &Netlist, pi: &[bool], state: &[bool]) -> Vec<bool> {
        let mut vals = vec![false; net.num_nodes()];
        for (v, &id) in pi.iter().zip(net.inputs()) {
            vals[id.index()] = *v;
        }
        for (v, &id) in state.iter().zip(net.dffs()) {
            vals[id.index()] = *v;
        }
        eval_scalar(net, &mut vals);
        vals
    }

    #[test]
    fn s27_known_vector() {
        // All inputs 0, all state 0:
        // G14=NOT(G0)=1, G12=NOR(G1,G7)=1, G13=NAND(G2,G12)=1, G8=AND(G14,G6)=0,
        // G15=OR(G12,G8)=1, G16=OR(G3,G8)=0, G9=NAND(G16,G15)=1,
        // G10=NOR(G14,G11), G11=NOR(G5,G9)=NOR(0,1)=0 -> G10=NOR(1,0)=0, G17=NOT(G11)=1.
        let net = s27();
        let vals = scalar_vals(&net, &[false; 4], &[false; 3]);
        let v = |name: &str| vals[net.find(name).unwrap().index()];
        assert!(v("G14"));
        assert!(v("G12"));
        assert!(v("G13"));
        assert!(!v("G8"));
        assert!(v("G15"));
        assert!(!v("G16"));
        assert!(v("G9"));
        assert!(!v("G11"));
        assert!(!v("G10"));
        assert!(v("G17"));
    }

    #[test]
    fn packed_matches_scalar_on_all_s27_source_combinations() {
        let net = s27();
        // 4 PIs + 3 FFs = 7 source bits -> 128 combinations; two words of 64.
        for word in 0..2u64 {
            let mut pi = vec![0u64; 4];
            let mut st = vec![0u64; 3];
            for pat in 0..64u64 {
                let combo = word * 64 + pat;
                for (b, w) in pi.iter_mut().enumerate() {
                    if (combo >> b) & 1 == 1 {
                        *w |= 1 << pat;
                    }
                }
                for (b, w) in st.iter_mut().enumerate() {
                    if (combo >> (4 + b)) & 1 == 1 {
                        *w |= 1 << pat;
                    }
                }
            }
            let mut vals = vec![0u64; net.num_nodes()];
            load_sources_packed(&net, &pi, &st, &mut vals);
            eval_packed(&net, &mut vals);
            for pat in 0..64u64 {
                let combo = word * 64 + pat;
                let pib: Vec<bool> = (0..4).map(|b| (combo >> b) & 1 == 1).collect();
                let stb: Vec<bool> = (0..3).map(|b| (combo >> (4 + b)) & 1 == 1).collect();
                let sv = scalar_vals(&net, &pib, &stb);
                for id in net.node_ids() {
                    let packed_bit = (vals[id.index()] >> pat) & 1 == 1;
                    assert_eq!(
                        packed_bit,
                        sv[id.index()],
                        "node {} combo {combo}",
                        net.node_name(id)
                    );
                }
            }
        }
    }

    #[test]
    fn compiled_eval_matches_eval_packed() {
        let net = s27();
        let prog = CompiledEval::new(&net);
        for combo in 0..128u64 {
            let pi: Vec<u64> = (0..4).map(|b| ((combo >> b) & 1) * !0u64).collect();
            let st: Vec<u64> = (0..3).map(|b| ((combo >> (4 + b)) & 1) * !0u64).collect();
            let mut reference = vec![0u64; net.num_nodes()];
            load_sources_packed(&net, &pi, &st, &mut reference);
            let mut compiled = reference.clone();
            eval_packed(&net, &mut reference);
            prog.eval(&mut compiled);
            assert_eq!(compiled, reference, "combo {combo}");
        }
    }

    #[test]
    fn cone_evaluation_matches_full() {
        let net = s27();
        let mut vals = vec![0u64; net.num_nodes()];
        load_sources_packed(&net, &[!0, 0, !0, 0], &[0, !0, 0], &mut vals);
        eval_packed(&net, &mut vals);
        // Flip G0 and re-evaluate only its cone.
        let g0 = net.find("G0").unwrap();
        let mut cone_vals = vals.clone();
        cone_vals[g0.index()] = 0;
        let cone = net.fanout_cone(g0);
        eval_packed_cone(&net, &cone, &mut cone_vals);
        // Reference: full re-evaluation.
        let mut full = vals.clone();
        full[g0.index()] = 0;
        eval_packed(&net, &mut full);
        assert_eq!(cone_vals, full);
    }

    #[test]
    fn next_state_reads_d_inputs() {
        let net = s27();
        let mut vals = vec![0u64; net.num_nodes()];
        load_sources_packed(&net, &[0; 4], &[0; 3], &mut vals);
        eval_packed(&net, &mut vals);
        let ns = next_state_packed(&net, &vals);
        // From s27_known_vector: G10=0, G11=0, G13=1.
        assert_eq!(ns[0] & 1, 0);
        assert_eq!(ns[1] & 1, 0);
        assert_eq!(ns[2] & 1, 1);
        let po = outputs_packed(&net, &vals);
        assert_eq!(po[0] & 1, 1); // G17 = 1
    }
}
