//! Initialization (reset) analysis with three-valued sequential simulation.
//!
//! The paper assumes every benchmark circuit "can be initialized into the
//! all-0 state … by shifting in the all-0 state or asserting a global reset"
//! (§4.6). This module makes the weaker, synthesis-free part of that
//! assumption checkable: starting from the fully unknown state, how many
//! state variables does a given input sequence *synchronize* (force to a
//! known value regardless of the power-up state)?

use fbt_netlist::Netlist;

use crate::tv;
use crate::{Bits, Trit};

/// The result of simulating an input sequence from the all-X state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitializationOutcome {
    /// The (possibly partial) state after the sequence.
    pub state: Vec<Trit>,
    /// How many state variables are synchronized (specified).
    pub synchronized: usize,
}

impl InitializationOutcome {
    /// Whether the whole state is known.
    pub fn fully_initialized(&self) -> bool {
        self.synchronized == self.state.len()
    }
}

/// Simulate `inputs` three-valuedly from the all-X state.
///
/// # Panics
///
/// Panics on input-width mismatches.
pub fn initialize(net: &Netlist, inputs: &[Bits]) -> InitializationOutcome {
    let mut state = vec![Trit::X; net.num_dffs()];
    for pi in inputs {
        assert_eq!(pi.len(), net.num_inputs(), "PI width mismatch");
        let pi_t: Vec<Trit> = pi.iter().map(Trit::from_bool).collect();
        let (_, next) = tv::simulate_frame_tv(net, &pi_t, &state);
        state = next;
    }
    let synchronized = state.iter().filter(|t| t.is_specified()).count();
    InitializationOutcome {
        state,
        synchronized,
    }
}

/// Greedy search for a synchronizing sequence of at most `max_len` vectors:
/// at each step, pick the constant input vector (over a candidate set of the
/// all-0, all-1 and per-bit one-hot vectors) that synchronizes the most
/// state variables.
///
/// Returns the chosen sequence and its outcome. Not finding a full
/// synchronizing sequence does **not** prove none exists (the problem is
/// PSPACE-hard in general); the paper's circuits resolve it with a reset
/// pin, which our synthetic catalog mirrors by construction of the
/// assumed-reachable all-0 state.
pub fn greedy_synchronizing_sequence(
    net: &Netlist,
    max_len: usize,
) -> (Vec<Bits>, InitializationOutcome) {
    let n_pi = net.num_inputs();
    let mut candidates: Vec<Bits> = vec![Bits::zeros(n_pi), (0..n_pi).map(|_| true).collect()];
    for i in 0..n_pi.min(16) {
        let mut v = Bits::zeros(n_pi);
        v.set(i, true);
        candidates.push(v);
    }
    let mut seq: Vec<Bits> = Vec::new();
    let mut best_outcome = initialize(net, &seq);
    for _ in 0..max_len {
        let mut improved = false;
        let mut best_vec = None;
        for c in &candidates {
            let mut trial = seq.clone();
            trial.push(c.clone());
            let outcome = initialize(net, &trial);
            if outcome.synchronized > best_outcome.synchronized {
                best_outcome = outcome;
                best_vec = Some(c.clone());
                improved = true;
            }
        }
        match best_vec {
            Some(v) => seq.push(v),
            None => break,
        }
        if best_outcome.fully_initialized() || !improved {
            break;
        }
    }
    (seq, best_outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn and_gated_flip_flop_synchronizes_on_zero() {
        // q = DFF(AND(q, en)): en = 0 forces q to 0 in one cycle.
        let mut b = NetlistBuilder::new("sync1");
        b.input("en").unwrap();
        b.dff("q", "d").unwrap();
        b.gate(GateKind::And, "d", &["q", "en"]).unwrap();
        b.output("q").unwrap();
        let net = b.finish().unwrap();
        let out = initialize(&net, &[Bits::from_str01("0")]);
        assert!(out.fully_initialized());
        assert_eq!(out.state[0], Trit::Zero);
        // en = 1 keeps it unknown.
        let out = initialize(&net, &[Bits::from_str01("1")]);
        assert_eq!(out.synchronized, 0);
    }

    #[test]
    fn xor_feedback_never_synchronizes() {
        // q = DFF(XOR(q, a)): no input value resolves X.
        let mut b = NetlistBuilder::new("toggle");
        b.input("a").unwrap();
        b.dff("q", "d").unwrap();
        b.gate(GateKind::Xor, "d", &["q", "a"]).unwrap();
        b.output("q").unwrap();
        let net = b.finish().unwrap();
        let (_, out) = greedy_synchronizing_sequence(&net, 8);
        assert_eq!(out.synchronized, 0, "a toggle flip-flop needs a reset pin");
    }

    #[test]
    fn s27_synchronizes_greedily() {
        // The genuine s27 is fully initializable from the unknown state.
        let net = fbt_netlist::s27();
        let (seq, out) = greedy_synchronizing_sequence(&net, 8);
        assert!(out.fully_initialized(), "synchronized {}", out.synchronized);
        assert!(!seq.is_empty());
        // Replaying the returned sequence reproduces the outcome.
        assert_eq!(initialize(&net, &seq), out);
    }

    #[test]
    fn synchronization_is_monotone_in_prefix_extension() {
        // Extending the greedy sequence never loses synchronized variables
        // under the same greedy choices (follows from 3-valued monotonicity
        // per step; checked empirically here).
        let net = fbt_netlist::s27();
        let (seq, _) = greedy_synchronizing_sequence(&net, 8);
        let mut prev = 0usize;
        for k in 1..=seq.len() {
            let out = initialize(&net, &seq[..k]);
            assert!(out.synchronized >= prev);
            prev = out.synchronized;
        }
    }
}
