#![warn(missing_docs)]

//! Logic simulation for gate-level sequential netlists.
//!
//! Three simulation flavours, each matched to a consumer in the workspace:
//!
//! * **Scalar two-valued** ([`comb::eval_scalar`], [`seq::SeqSim`]) — one
//!   pattern at a time, used by the sequential trajectory simulation that
//!   drives built-in test generation (Chapter 4 of the paper) and by the
//!   switching-activity monitor ([`activity`]).
//! * **Bit-parallel two-valued** ([`comb::eval_packed`]) — 64 patterns per
//!   machine word, the throughput kernel behind broadside fault simulation;
//!   [`lanes::LaneSeqSim`] lifts it to sequential trajectories, evaluating
//!   up to 64 speculative candidates per levelized pass.
//! * **Scalar three-valued** ([`tv`]) — 0/1/X simulation used for primary
//!   input cube computation, necessary assignments and case analysis.
//!
//! [`Bits`] is the packed bitvector used for states, input vectors and
//! responses throughout the workspace.

pub mod activity;
mod bits;
pub mod comb;
pub mod event;
pub mod lanes;
pub mod reset;
pub mod seq;
pub mod tv;

pub use bits::Bits;
pub use tv::Trit;
