//! Switching-activity measurement.
//!
//! The paper (Section 4.4) defines `SWA(i)` as the percentage of lines whose
//! values in clock cycle `i` differ from their values in clock cycle `i-1`,
//! with `SWA(0)` undefined. The peak over a set of *functional* input
//! sequences of the complete design defines `SWAfunc`, the bound that
//! constrained built-in test generation must respect.

use fbt_netlist::Netlist;

use crate::seq::{simulate_sequence, Trajectory};
use crate::Bits;

/// Per-cycle switching activity of one simulated sequence, with helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityProfile {
    /// `swa[i]` for each applied cycle (`None` at index 0).
    pub per_cycle: Vec<Option<f64>>,
}

impl ActivityProfile {
    /// Extract the profile from a recorded trajectory.
    pub fn from_trajectory(t: &Trajectory) -> Self {
        ActivityProfile {
            per_cycle: t.swa.clone(),
        }
    }

    /// The peak defined switching activity (0.0 when nothing is defined).
    pub fn peak(&self) -> f64 {
        self.per_cycle
            .iter()
            .flatten()
            .fold(0.0f64, |a, &b| a.max(b))
    }

    /// Mean of the defined per-cycle activities.
    pub fn mean(&self) -> f64 {
        let defined: Vec<f64> = self.per_cycle.iter().flatten().copied().collect();
        if defined.is_empty() {
            0.0
        } else {
            defined.iter().sum::<f64>() / defined.len() as f64
        }
    }

    /// Index of the first cycle whose activity exceeds `bound`, if any.
    ///
    /// This is the violation test of the multi-segment construction procedure
    /// (paper Fig. 4.9): a primary-input segment ends just before the first
    /// violating cycle.
    pub fn first_violation(&self, bound: f64) -> Option<usize> {
        self.per_cycle
            .iter()
            .enumerate()
            .find(|(_, s)| s.is_some_and(|v| v > bound))
            .map(|(i, _)| i)
    }
}

/// Compute the peak switching activity of `net` over a set of input
/// sequences, each applied from `initial_state` — the paper's `SWAfunc`
/// when the sequences are functional input sequences of the design.
///
/// # Panics
///
/// Panics on width mismatches.
pub fn peak_activity(net: &Netlist, initial_state: &Bits, sequences: &[Vec<Bits>]) -> f64 {
    sequences
        .iter()
        .map(|seq| simulate_sequence(net, initial_state, seq).peak_swa())
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    fn toggling_sequence(len: usize) -> Vec<Bits> {
        (0..len)
            .map(|i| {
                if i % 2 == 0 {
                    Bits::from_str01("0000")
                } else {
                    Bits::from_str01("1111")
                }
            })
            .collect()
    }

    #[test]
    fn profile_peak_and_mean() {
        let net = s27();
        let t = simulate_sequence(&net, &Bits::zeros(3), &toggling_sequence(10));
        let p = ActivityProfile::from_trajectory(&t);
        assert!(p.peak() > 0.0);
        assert!(p.mean() <= p.peak());
    }

    #[test]
    fn first_violation_finds_bound_crossing() {
        let net = s27();
        let t = simulate_sequence(&net, &Bits::zeros(3), &toggling_sequence(10));
        let p = ActivityProfile::from_trajectory(&t);
        // bound below peak -> there is a violation; bound at/above peak -> none.
        assert!(p.first_violation(p.peak() - 1e-9).is_some());
        assert!(p.first_violation(p.peak()).is_none());
    }

    #[test]
    fn peak_activity_over_multiple_sequences() {
        let net = s27();
        let quiet: Vec<Bits> = (0..10).map(|_| Bits::from_str01("0000")).collect();
        let noisy = toggling_sequence(10);
        let both = [quiet.clone(), noisy.clone()];
        let peak_quiet = peak_activity(&net, &Bits::zeros(3), &[quiet]);
        let peak_both = peak_activity(&net, &Bits::zeros(3), &both);
        assert!(peak_both >= peak_quiet);
    }

    #[test]
    fn activity_bounded_by_one() {
        let net = s27();
        let t = simulate_sequence(&net, &Bits::zeros(3), &toggling_sequence(50));
        for s in t.swa.iter().flatten() {
            assert!(*s >= 0.0 && *s <= 1.0);
        }
    }
}
