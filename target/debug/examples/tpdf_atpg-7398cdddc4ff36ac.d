/root/repo/target/debug/examples/tpdf_atpg-7398cdddc4ff36ac.d: examples/tpdf_atpg.rs Cargo.toml

/root/repo/target/debug/examples/libtpdf_atpg-7398cdddc4ff36ac.rmeta: examples/tpdf_atpg.rs Cargo.toml

examples/tpdf_atpg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
