/root/repo/target/debug/examples/quickstart-3b01b60d1e530152.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3b01b60d1e530152: examples/quickstart.rs

examples/quickstart.rs:
