/root/repo/target/debug/examples/tpdf_atpg-b886033bd8b4044c.d: examples/tpdf_atpg.rs

/root/repo/target/debug/examples/tpdf_atpg-b886033bd8b4044c: examples/tpdf_atpg.rs

examples/tpdf_atpg.rs:
