/root/repo/target/debug/examples/bench_format-f9bdb407323b6927.d: examples/bench_format.rs Cargo.toml

/root/repo/target/debug/examples/libbench_format-f9bdb407323b6927.rmeta: examples/bench_format.rs Cargo.toml

examples/bench_format.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
