/root/repo/target/debug/examples/embedded_block-3dc318a6c114f0de.d: examples/embedded_block.rs Cargo.toml

/root/repo/target/debug/examples/libembedded_block-3dc318a6c114f0de.rmeta: examples/embedded_block.rs Cargo.toml

examples/embedded_block.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
