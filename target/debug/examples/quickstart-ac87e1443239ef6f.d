/root/repo/target/debug/examples/quickstart-ac87e1443239ef6f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ac87e1443239ef6f: examples/quickstart.rs

examples/quickstart.rs:
