/root/repo/target/debug/examples/hardware_session-c24ed256a006e5bc.d: examples/hardware_session.rs

/root/repo/target/debug/examples/hardware_session-c24ed256a006e5bc: examples/hardware_session.rs

examples/hardware_session.rs:
