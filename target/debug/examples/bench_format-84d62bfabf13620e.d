/root/repo/target/debug/examples/bench_format-84d62bfabf13620e.d: examples/bench_format.rs

/root/repo/target/debug/examples/bench_format-84d62bfabf13620e: examples/bench_format.rs

examples/bench_format.rs:
