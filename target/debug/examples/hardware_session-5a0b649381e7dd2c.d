/root/repo/target/debug/examples/hardware_session-5a0b649381e7dd2c.d: examples/hardware_session.rs Cargo.toml

/root/repo/target/debug/examples/libhardware_session-5a0b649381e7dd2c.rmeta: examples/hardware_session.rs Cargo.toml

examples/hardware_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
