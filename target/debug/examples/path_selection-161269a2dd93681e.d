/root/repo/target/debug/examples/path_selection-161269a2dd93681e.d: examples/path_selection.rs

/root/repo/target/debug/examples/path_selection-161269a2dd93681e: examples/path_selection.rs

examples/path_selection.rs:
