/root/repo/target/debug/examples/bench_format-0fe4d34a93f62dae.d: examples/bench_format.rs

/root/repo/target/debug/examples/bench_format-0fe4d34a93f62dae: examples/bench_format.rs

examples/bench_format.rs:
