/root/repo/target/debug/examples/path_selection-c8671bf564d17bf5.d: examples/path_selection.rs

/root/repo/target/debug/examples/path_selection-c8671bf564d17bf5: examples/path_selection.rs

examples/path_selection.rs:
