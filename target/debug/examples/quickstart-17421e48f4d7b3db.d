/root/repo/target/debug/examples/quickstart-17421e48f4d7b3db.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-17421e48f4d7b3db.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
