/root/repo/target/debug/examples/path_selection-6a6dd1b4dd18ffb0.d: examples/path_selection.rs Cargo.toml

/root/repo/target/debug/examples/libpath_selection-6a6dd1b4dd18ffb0.rmeta: examples/path_selection.rs Cargo.toml

examples/path_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
