/root/repo/target/debug/examples/tpdf_atpg-df4bb92ee46c3b80.d: examples/tpdf_atpg.rs

/root/repo/target/debug/examples/tpdf_atpg-df4bb92ee46c3b80: examples/tpdf_atpg.rs

examples/tpdf_atpg.rs:
