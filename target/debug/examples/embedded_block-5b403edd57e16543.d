/root/repo/target/debug/examples/embedded_block-5b403edd57e16543.d: examples/embedded_block.rs

/root/repo/target/debug/examples/embedded_block-5b403edd57e16543: examples/embedded_block.rs

examples/embedded_block.rs:
