/root/repo/target/debug/examples/hardware_session-1e1815e56754ac37.d: examples/hardware_session.rs

/root/repo/target/debug/examples/hardware_session-1e1815e56754ac37: examples/hardware_session.rs

examples/hardware_session.rs:
