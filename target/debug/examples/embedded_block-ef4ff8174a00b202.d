/root/repo/target/debug/examples/embedded_block-ef4ff8174a00b202.d: examples/embedded_block.rs

/root/repo/target/debug/examples/embedded_block-ef4ff8174a00b202: examples/embedded_block.rs

examples/embedded_block.rs:
