/root/repo/target/debug/deps/fbt_bench-98825160d67d138b.d: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

/root/repo/target/debug/deps/fbt_bench-98825160d67d138b: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

crates/bench/src/lib.rs:
crates/bench/src/ch2.rs:
crates/bench/src/ch3.rs:
crates/bench/src/ch4.rs:
