/root/repo/target/debug/deps/table4_3-013e1f9103d69229.d: crates/bench/src/bin/table4_3.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_3-013e1f9103d69229.rmeta: crates/bench/src/bin/table4_3.rs Cargo.toml

crates/bench/src/bin/table4_3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
