/root/repo/target/debug/deps/multiclock-38ec5911cbf7e167.d: crates/bench/src/bin/multiclock.rs

/root/repo/target/debug/deps/multiclock-38ec5911cbf7e167: crates/bench/src/bin/multiclock.rs

crates/bench/src/bin/multiclock.rs:
