/root/repo/target/debug/deps/table2_5_2_6-e8ce784f5719314e.d: crates/bench/src/bin/table2_5_2_6.rs

/root/repo/target/debug/deps/table2_5_2_6-e8ce784f5719314e: crates/bench/src/bin/table2_5_2_6.rs

crates/bench/src/bin/table2_5_2_6.rs:
