/root/repo/target/debug/deps/ablation_metric-b008e13be422fbdd.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/debug/deps/ablation_metric-b008e13be422fbdd: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
