/root/repo/target/debug/deps/table2_1-8fbc6bf22c3eb46e.d: crates/bench/src/bin/table2_1.rs

/root/repo/target/debug/deps/table2_1-8fbc6bf22c3eb46e: crates/bench/src/bin/table2_1.rs

crates/bench/src/bin/table2_1.rs:
