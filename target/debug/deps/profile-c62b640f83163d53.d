/root/repo/target/debug/deps/profile-c62b640f83163d53.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-c62b640f83163d53.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
