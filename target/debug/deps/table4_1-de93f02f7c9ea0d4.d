/root/repo/target/debug/deps/table4_1-de93f02f7c9ea0d4.d: crates/bench/src/bin/table4_1.rs

/root/repo/target/debug/deps/table4_1-de93f02f7c9ea0d4: crates/bench/src/bin/table4_1.rs

crates/bench/src/bin/table4_1.rs:
