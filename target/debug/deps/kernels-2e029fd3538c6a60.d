/root/repo/target/debug/deps/kernels-2e029fd3538c6a60.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-2e029fd3538c6a60.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
