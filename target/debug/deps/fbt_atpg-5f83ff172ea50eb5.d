/root/repo/target/debug/deps/fbt_atpg-5f83ff172ea50eb5.d: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

/root/repo/target/debug/deps/libfbt_atpg-5f83ff172ea50eb5.rlib: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

/root/repo/target/debug/deps/libfbt_atpg-5f83ff172ea50eb5.rmeta: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

crates/atpg/src/lib.rs:
crates/atpg/src/compaction.rs:
crates/atpg/src/frames.rs:
crates/atpg/src/implic.rs:
crates/atpg/src/necessary.rs:
crates/atpg/src/podem.rs:
crates/atpg/src/test_cube.rs:
crates/atpg/src/tpdf.rs:
