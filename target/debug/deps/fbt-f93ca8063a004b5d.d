/root/repo/target/debug/deps/fbt-f93ca8063a004b5d.d: src/lib.rs

/root/repo/target/debug/deps/libfbt-f93ca8063a004b5d.rlib: src/lib.rs

/root/repo/target/debug/deps/libfbt-f93ca8063a004b5d.rmeta: src/lib.rs

src/lib.rs:
