/root/repo/target/debug/deps/fbt_bench-4886c333f83239e8.d: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs Cargo.toml

/root/repo/target/debug/deps/libfbt_bench-4886c333f83239e8.rmeta: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ch2.rs:
crates/bench/src/ch3.rs:
crates/bench/src/ch4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
