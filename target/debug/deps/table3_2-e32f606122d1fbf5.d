/root/repo/target/debug/deps/table3_2-e32f606122d1fbf5.d: crates/bench/src/bin/table3_2.rs

/root/repo/target/debug/deps/table3_2-e32f606122d1fbf5: crates/bench/src/bin/table3_2.rs

crates/bench/src/bin/table3_2.rs:
