/root/repo/target/debug/deps/table2_1-d92080e879457640.d: crates/bench/src/bin/table2_1.rs

/root/repo/target/debug/deps/table2_1-d92080e879457640: crates/bench/src/bin/table2_1.rs

crates/bench/src/bin/table2_1.rs:
