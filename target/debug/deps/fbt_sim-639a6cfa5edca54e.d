/root/repo/target/debug/deps/fbt_sim-639a6cfa5edca54e.d: crates/sim/src/lib.rs crates/sim/src/activity.rs crates/sim/src/bits.rs crates/sim/src/comb.rs crates/sim/src/event.rs crates/sim/src/reset.rs crates/sim/src/seq.rs crates/sim/src/tv.rs

/root/repo/target/debug/deps/libfbt_sim-639a6cfa5edca54e.rlib: crates/sim/src/lib.rs crates/sim/src/activity.rs crates/sim/src/bits.rs crates/sim/src/comb.rs crates/sim/src/event.rs crates/sim/src/reset.rs crates/sim/src/seq.rs crates/sim/src/tv.rs

/root/repo/target/debug/deps/libfbt_sim-639a6cfa5edca54e.rmeta: crates/sim/src/lib.rs crates/sim/src/activity.rs crates/sim/src/bits.rs crates/sim/src/comb.rs crates/sim/src/event.rs crates/sim/src/reset.rs crates/sim/src/seq.rs crates/sim/src/tv.rs

crates/sim/src/lib.rs:
crates/sim/src/activity.rs:
crates/sim/src/bits.rs:
crates/sim/src/comb.rs:
crates/sim/src/event.rs:
crates/sim/src/reset.rs:
crates/sim/src/seq.rs:
crates/sim/src/tv.rs:
