/root/repo/target/debug/deps/table4_2-ae5c4090f925de6d.d: crates/bench/src/bin/table4_2.rs

/root/repo/target/debug/deps/table4_2-ae5c4090f925de6d: crates/bench/src/bin/table4_2.rs

crates/bench/src/bin/table4_2.rs:
