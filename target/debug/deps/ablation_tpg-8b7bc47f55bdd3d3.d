/root/repo/target/debug/deps/ablation_tpg-8b7bc47f55bdd3d3.d: crates/bench/src/bin/ablation_tpg.rs

/root/repo/target/debug/deps/ablation_tpg-8b7bc47f55bdd3d3: crates/bench/src/bin/ablation_tpg.rs

crates/bench/src/bin/ablation_tpg.rs:
