/root/repo/target/debug/deps/table4_2-2f49b486d3d6401c.d: crates/bench/src/bin/table4_2.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_2-2f49b486d3d6401c.rmeta: crates/bench/src/bin/table4_2.rs Cargo.toml

crates/bench/src/bin/table4_2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
