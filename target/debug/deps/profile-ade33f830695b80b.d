/root/repo/target/debug/deps/profile-ade33f830695b80b.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-ade33f830695b80b: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
