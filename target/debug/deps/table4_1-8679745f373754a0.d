/root/repo/target/debug/deps/table4_1-8679745f373754a0.d: crates/bench/src/bin/table4_1.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_1-8679745f373754a0.rmeta: crates/bench/src/bin/table4_1.rs Cargo.toml

crates/bench/src/bin/table4_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
