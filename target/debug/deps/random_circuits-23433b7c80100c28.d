/root/repo/target/debug/deps/random_circuits-23433b7c80100c28.d: crates/atpg/tests/random_circuits.rs Cargo.toml

/root/repo/target/debug/deps/librandom_circuits-23433b7c80100c28.rmeta: crates/atpg/tests/random_circuits.rs Cargo.toml

crates/atpg/tests/random_circuits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
