/root/repo/target/debug/deps/ablation_tpg-5c8ec259e0037b37.d: crates/bench/src/bin/ablation_tpg.rs

/root/repo/target/debug/deps/ablation_tpg-5c8ec259e0037b37: crates/bench/src/bin/ablation_tpg.rs

crates/bench/src/bin/ablation_tpg.rs:
