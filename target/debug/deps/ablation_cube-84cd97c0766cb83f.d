/root/repo/target/debug/deps/ablation_cube-84cd97c0766cb83f.d: crates/bench/src/bin/ablation_cube.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cube-84cd97c0766cb83f.rmeta: crates/bench/src/bin/ablation_cube.rs Cargo.toml

crates/bench/src/bin/ablation_cube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
