/root/repo/target/debug/deps/table3_4-833ec899634b0dd7.d: crates/bench/src/bin/table3_4.rs

/root/repo/target/debug/deps/table3_4-833ec899634b0dd7: crates/bench/src/bin/table3_4.rs

crates/bench/src/bin/table3_4.rs:
