/root/repo/target/debug/deps/table2_1-3a94437cc8ab9358.d: crates/bench/src/bin/table2_1.rs

/root/repo/target/debug/deps/table2_1-3a94437cc8ab9358: crates/bench/src/bin/table2_1.rs

crates/bench/src/bin/table2_1.rs:
