/root/repo/target/debug/deps/table2_3_2_4-70222395fb865337.d: crates/bench/src/bin/table2_3_2_4.rs

/root/repo/target/debug/deps/table2_3_2_4-70222395fb865337: crates/bench/src/bin/table2_3_2_4.rs

crates/bench/src/bin/table2_3_2_4.rs:
