/root/repo/target/debug/deps/multiclock-808e31fcaa43799a.d: crates/bench/src/bin/multiclock.rs Cargo.toml

/root/repo/target/debug/deps/libmulticlock-808e31fcaa43799a.rmeta: crates/bench/src/bin/multiclock.rs Cargo.toml

crates/bench/src/bin/multiclock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
