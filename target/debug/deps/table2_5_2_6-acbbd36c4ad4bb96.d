/root/repo/target/debug/deps/table2_5_2_6-acbbd36c4ad4bb96.d: crates/bench/src/bin/table2_5_2_6.rs

/root/repo/target/debug/deps/table2_5_2_6-acbbd36c4ad4bb96: crates/bench/src/bin/table2_5_2_6.rs

crates/bench/src/bin/table2_5_2_6.rs:
