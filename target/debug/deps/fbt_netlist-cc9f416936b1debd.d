/root/repo/target/debug/deps/fbt_netlist-cc9f416936b1debd.d: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/netlist.rs crates/netlist/src/rng.rs crates/netlist/src/synth.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/libfbt_netlist-cc9f416936b1debd.rlib: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/netlist.rs crates/netlist/src/rng.rs crates/netlist/src/synth.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/libfbt_netlist-cc9f416936b1debd.rmeta: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/netlist.rs crates/netlist/src/rng.rs crates/netlist/src/synth.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/analysis.rs:
crates/netlist/src/bench.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gate.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/rng.rs:
crates/netlist/src/synth.rs:
crates/netlist/src/verilog.rs:
