/root/repo/target/debug/deps/invariants-ef8f0a0e91756f82.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-ef8f0a0e91756f82: tests/invariants.rs

tests/invariants.rs:
