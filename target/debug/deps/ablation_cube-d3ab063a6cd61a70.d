/root/repo/target/debug/deps/ablation_cube-d3ab063a6cd61a70.d: crates/bench/src/bin/ablation_cube.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cube-d3ab063a6cd61a70.rmeta: crates/bench/src/bin/ablation_cube.rs Cargo.toml

crates/bench/src/bin/ablation_cube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
