/root/repo/target/debug/deps/table4_1-ec8cf1238f4c343d.d: crates/bench/src/bin/table4_1.rs

/root/repo/target/debug/deps/table4_1-ec8cf1238f4c343d: crates/bench/src/bin/table4_1.rs

crates/bench/src/bin/table4_1.rs:
