/root/repo/target/debug/deps/table2_5_2_6-c37c14ed05258cfe.d: crates/bench/src/bin/table2_5_2_6.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_5_2_6-c37c14ed05258cfe.rmeta: crates/bench/src/bin/table2_5_2_6.rs Cargo.toml

crates/bench/src/bin/table2_5_2_6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
