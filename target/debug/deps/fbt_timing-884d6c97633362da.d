/root/repo/target/debug/deps/fbt_timing-884d6c97633362da.d: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

/root/repo/target/debug/deps/libfbt_timing-884d6c97633362da.rlib: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

/root/repo/target/debug/deps/libfbt_timing-884d6c97633362da.rmeta: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

crates/timing/src/lib.rs:
crates/timing/src/case.rs:
crates/timing/src/delay.rs:
crates/timing/src/report.rs:
crates/timing/src/select.rs:
crates/timing/src/sta.rs:
