/root/repo/target/debug/deps/ablation_metric-25aafe6ee26ccd54.d: crates/bench/src/bin/ablation_metric.rs Cargo.toml

/root/repo/target/debug/deps/libablation_metric-25aafe6ee26ccd54.rmeta: crates/bench/src/bin/ablation_metric.rs Cargo.toml

crates/bench/src/bin/ablation_metric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
