/root/repo/target/debug/deps/table3_2-676ec589957549fd.d: crates/bench/src/bin/table3_2.rs

/root/repo/target/debug/deps/table3_2-676ec589957549fd: crates/bench/src/bin/table3_2.rs

crates/bench/src/bin/table3_2.rs:
