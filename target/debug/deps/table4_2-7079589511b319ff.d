/root/repo/target/debug/deps/table4_2-7079589511b319ff.d: crates/bench/src/bin/table4_2.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_2-7079589511b319ff.rmeta: crates/bench/src/bin/table4_2.rs Cargo.toml

crates/bench/src/bin/table4_2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
