/root/repo/target/debug/deps/table4_1-08c462de8b3f1c52.d: crates/bench/src/bin/table4_1.rs

/root/repo/target/debug/deps/table4_1-08c462de8b3f1c52: crates/bench/src/bin/table4_1.rs

crates/bench/src/bin/table4_1.rs:
