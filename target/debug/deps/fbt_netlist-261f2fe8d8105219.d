/root/repo/target/debug/deps/fbt_netlist-261f2fe8d8105219.d: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/netlist.rs crates/netlist/src/rng.rs crates/netlist/src/synth.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/fbt_netlist-261f2fe8d8105219: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/netlist.rs crates/netlist/src/rng.rs crates/netlist/src/synth.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/analysis.rs:
crates/netlist/src/bench.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gate.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/rng.rs:
crates/netlist/src/synth.rs:
crates/netlist/src/verilog.rs:
