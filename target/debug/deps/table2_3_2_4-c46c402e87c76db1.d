/root/repo/target/debug/deps/table2_3_2_4-c46c402e87c76db1.d: crates/bench/src/bin/table2_3_2_4.rs

/root/repo/target/debug/deps/table2_3_2_4-c46c402e87c76db1: crates/bench/src/bin/table2_3_2_4.rs

crates/bench/src/bin/table2_3_2_4.rs:
