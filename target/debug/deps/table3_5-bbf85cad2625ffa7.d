/root/repo/target/debug/deps/table3_5-bbf85cad2625ffa7.d: crates/bench/src/bin/table3_5.rs

/root/repo/target/debug/deps/table3_5-bbf85cad2625ffa7: crates/bench/src/bin/table3_5.rs

crates/bench/src/bin/table3_5.rs:
