/root/repo/target/debug/deps/ablation_holding-80422ab536b19e97.d: crates/bench/src/bin/ablation_holding.rs Cargo.toml

/root/repo/target/debug/deps/libablation_holding-80422ab536b19e97.rmeta: crates/bench/src/bin/ablation_holding.rs Cargo.toml

crates/bench/src/bin/ablation_holding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
