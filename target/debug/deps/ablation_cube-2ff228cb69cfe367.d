/root/repo/target/debug/deps/ablation_cube-2ff228cb69cfe367.d: crates/bench/src/bin/ablation_cube.rs

/root/repo/target/debug/deps/ablation_cube-2ff228cb69cfe367: crates/bench/src/bin/ablation_cube.rs

crates/bench/src/bin/ablation_cube.rs:
