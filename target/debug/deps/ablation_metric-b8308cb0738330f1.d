/root/repo/target/debug/deps/ablation_metric-b8308cb0738330f1.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/debug/deps/ablation_metric-b8308cb0738330f1: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
