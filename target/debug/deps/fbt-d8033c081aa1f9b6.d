/root/repo/target/debug/deps/fbt-d8033c081aa1f9b6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfbt-d8033c081aa1f9b6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
