/root/repo/target/debug/deps/ndetect-3a278208266b0cdc.d: crates/bench/src/bin/ndetect.rs Cargo.toml

/root/repo/target/debug/deps/libndetect-3a278208266b0cdc.rmeta: crates/bench/src/bin/ndetect.rs Cargo.toml

crates/bench/src/bin/ndetect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
