/root/repo/target/debug/deps/multiclock-a71a603c17d11b70.d: crates/bench/src/bin/multiclock.rs

/root/repo/target/debug/deps/multiclock-a71a603c17d11b70: crates/bench/src/bin/multiclock.rs

crates/bench/src/bin/multiclock.rs:
