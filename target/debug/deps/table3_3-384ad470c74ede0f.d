/root/repo/target/debug/deps/table3_3-384ad470c74ede0f.d: crates/bench/src/bin/table3_3.rs

/root/repo/target/debug/deps/table3_3-384ad470c74ede0f: crates/bench/src/bin/table3_3.rs

crates/bench/src/bin/table3_3.rs:
