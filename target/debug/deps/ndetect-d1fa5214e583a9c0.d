/root/repo/target/debug/deps/ndetect-d1fa5214e583a9c0.d: crates/bench/src/bin/ndetect.rs

/root/repo/target/debug/deps/ndetect-d1fa5214e583a9c0: crates/bench/src/bin/ndetect.rs

crates/bench/src/bin/ndetect.rs:
