/root/repo/target/debug/deps/table2_2-6975079e334075ad.d: crates/bench/src/bin/table2_2.rs

/root/repo/target/debug/deps/table2_2-6975079e334075ad: crates/bench/src/bin/table2_2.rs

crates/bench/src/bin/table2_2.rs:
