/root/repo/target/debug/deps/ablation_metric-ab0bdbd381bd784e.d: crates/bench/src/bin/ablation_metric.rs Cargo.toml

/root/repo/target/debug/deps/libablation_metric-ab0bdbd381bd784e.rmeta: crates/bench/src/bin/ablation_metric.rs Cargo.toml

crates/bench/src/bin/ablation_metric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
