/root/repo/target/debug/deps/table2_2-8c67d7cdb6b92ed0.d: crates/bench/src/bin/table2_2.rs

/root/repo/target/debug/deps/table2_2-8c67d7cdb6b92ed0: crates/bench/src/bin/table2_2.rs

crates/bench/src/bin/table2_2.rs:
