/root/repo/target/debug/deps/ablation_holding-ddba8f5e5588ebd0.d: crates/bench/src/bin/ablation_holding.rs Cargo.toml

/root/repo/target/debug/deps/libablation_holding-ddba8f5e5588ebd0.rmeta: crates/bench/src/bin/ablation_holding.rs Cargo.toml

crates/bench/src/bin/ablation_holding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
