/root/repo/target/debug/deps/properties-90c211134c89230c.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-90c211134c89230c.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
