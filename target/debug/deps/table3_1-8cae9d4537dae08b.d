/root/repo/target/debug/deps/table3_1-8cae9d4537dae08b.d: crates/bench/src/bin/table3_1.rs

/root/repo/target/debug/deps/table3_1-8cae9d4537dae08b: crates/bench/src/bin/table3_1.rs

crates/bench/src/bin/table3_1.rs:
