/root/repo/target/debug/deps/profile-a827249fb5390de3.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-a827249fb5390de3: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
