/root/repo/target/debug/deps/profile-43b764b85b156b4d.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-43b764b85b156b4d: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
