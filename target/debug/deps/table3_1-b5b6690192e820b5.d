/root/repo/target/debug/deps/table3_1-b5b6690192e820b5.d: crates/bench/src/bin/table3_1.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_1-b5b6690192e820b5.rmeta: crates/bench/src/bin/table3_1.rs Cargo.toml

crates/bench/src/bin/table3_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
