/root/repo/target/debug/deps/ablation_tpg-795739b51d4fa993.d: crates/bench/src/bin/ablation_tpg.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tpg-795739b51d4fa993.rmeta: crates/bench/src/bin/ablation_tpg.rs Cargo.toml

crates/bench/src/bin/ablation_tpg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
