/root/repo/target/debug/deps/exhaustive_s27-b2528613ae10cc9b.d: crates/atpg/tests/exhaustive_s27.rs Cargo.toml

/root/repo/target/debug/deps/libexhaustive_s27-b2528613ae10cc9b.rmeta: crates/atpg/tests/exhaustive_s27.rs Cargo.toml

crates/atpg/tests/exhaustive_s27.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
