/root/repo/target/debug/deps/table3_2-2fc56584030a2e34.d: crates/bench/src/bin/table3_2.rs

/root/repo/target/debug/deps/table3_2-2fc56584030a2e34: crates/bench/src/bin/table3_2.rs

crates/bench/src/bin/table3_2.rs:
