/root/repo/target/debug/deps/fbt_atpg-b62ad93d9369ef6b.d: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs Cargo.toml

/root/repo/target/debug/deps/libfbt_atpg-b62ad93d9369ef6b.rmeta: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs Cargo.toml

crates/atpg/src/lib.rs:
crates/atpg/src/compaction.rs:
crates/atpg/src/frames.rs:
crates/atpg/src/implic.rs:
crates/atpg/src/necessary.rs:
crates/atpg/src/podem.rs:
crates/atpg/src/test_cube.rs:
crates/atpg/src/tpdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
