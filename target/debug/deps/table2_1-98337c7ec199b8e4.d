/root/repo/target/debug/deps/table2_1-98337c7ec199b8e4.d: crates/bench/src/bin/table2_1.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_1-98337c7ec199b8e4.rmeta: crates/bench/src/bin/table2_1.rs Cargo.toml

crates/bench/src/bin/table2_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
