/root/repo/target/debug/deps/table4_4-f549327352499846.d: crates/bench/src/bin/table4_4.rs

/root/repo/target/debug/deps/table4_4-f549327352499846: crates/bench/src/bin/table4_4.rs

crates/bench/src/bin/table4_4.rs:
