/root/repo/target/debug/deps/differential-0fc09c14e1d8109a.d: crates/fault/tests/differential.rs

/root/repo/target/debug/deps/differential-0fc09c14e1d8109a: crates/fault/tests/differential.rs

crates/fault/tests/differential.rs:
