/root/repo/target/debug/deps/ndetect-b4cece7fc416dcc0.d: crates/bench/src/bin/ndetect.rs

/root/repo/target/debug/deps/ndetect-b4cece7fc416dcc0: crates/bench/src/bin/ndetect.rs

crates/bench/src/bin/ndetect.rs:
