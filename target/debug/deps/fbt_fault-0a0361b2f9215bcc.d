/root/repo/target/debug/deps/fbt_fault-0a0361b2f9215bcc.d: crates/fault/src/lib.rs crates/fault/src/broadside.rs crates/fault/src/engine.rs crates/fault/src/path.rs crates/fault/src/sensitize.rs crates/fault/src/sim.rs crates/fault/src/stuck.rs crates/fault/src/transition.rs

/root/repo/target/debug/deps/fbt_fault-0a0361b2f9215bcc: crates/fault/src/lib.rs crates/fault/src/broadside.rs crates/fault/src/engine.rs crates/fault/src/path.rs crates/fault/src/sensitize.rs crates/fault/src/sim.rs crates/fault/src/stuck.rs crates/fault/src/transition.rs

crates/fault/src/lib.rs:
crates/fault/src/broadside.rs:
crates/fault/src/engine.rs:
crates/fault/src/path.rs:
crates/fault/src/sensitize.rs:
crates/fault/src/sim.rs:
crates/fault/src/stuck.rs:
crates/fault/src/transition.rs:
