/root/repo/target/debug/deps/ablation_metric-601b7084863dc22f.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/debug/deps/ablation_metric-601b7084863dc22f: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
