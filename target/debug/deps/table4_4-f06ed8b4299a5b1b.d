/root/repo/target/debug/deps/table4_4-f06ed8b4299a5b1b.d: crates/bench/src/bin/table4_4.rs

/root/repo/target/debug/deps/table4_4-f06ed8b4299a5b1b: crates/bench/src/bin/table4_4.rs

crates/bench/src/bin/table4_4.rs:
