/root/repo/target/debug/deps/fbt_bench-165fdc3680728e85.d: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

/root/repo/target/debug/deps/libfbt_bench-165fdc3680728e85.rlib: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

/root/repo/target/debug/deps/libfbt_bench-165fdc3680728e85.rmeta: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

crates/bench/src/lib.rs:
crates/bench/src/ch2.rs:
crates/bench/src/ch3.rs:
crates/bench/src/ch4.rs:
