/root/repo/target/debug/deps/kernels-e41d42b0840cbd72.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-e41d42b0840cbd72: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
