/root/repo/target/debug/deps/table3_5-996b90e4a528d1d1.d: crates/bench/src/bin/table3_5.rs

/root/repo/target/debug/deps/table3_5-996b90e4a528d1d1: crates/bench/src/bin/table3_5.rs

crates/bench/src/bin/table3_5.rs:
