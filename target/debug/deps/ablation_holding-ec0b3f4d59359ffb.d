/root/repo/target/debug/deps/ablation_holding-ec0b3f4d59359ffb.d: crates/bench/src/bin/ablation_holding.rs

/root/repo/target/debug/deps/ablation_holding-ec0b3f4d59359ffb: crates/bench/src/bin/ablation_holding.rs

crates/bench/src/bin/ablation_holding.rs:
