/root/repo/target/debug/deps/ablation_cube-05241b305bfa9b10.d: crates/bench/src/bin/ablation_cube.rs

/root/repo/target/debug/deps/ablation_cube-05241b305bfa9b10: crates/bench/src/bin/ablation_cube.rs

crates/bench/src/bin/ablation_cube.rs:
