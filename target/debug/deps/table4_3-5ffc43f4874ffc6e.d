/root/repo/target/debug/deps/table4_3-5ffc43f4874ffc6e.d: crates/bench/src/bin/table4_3.rs

/root/repo/target/debug/deps/table4_3-5ffc43f4874ffc6e: crates/bench/src/bin/table4_3.rs

crates/bench/src/bin/table4_3.rs:
