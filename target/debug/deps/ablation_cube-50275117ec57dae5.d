/root/repo/target/debug/deps/ablation_cube-50275117ec57dae5.d: crates/bench/src/bin/ablation_cube.rs

/root/repo/target/debug/deps/ablation_cube-50275117ec57dae5: crates/bench/src/bin/ablation_cube.rs

crates/bench/src/bin/ablation_cube.rs:
