/root/repo/target/debug/deps/table2_2-970832a15808af63.d: crates/bench/src/bin/table2_2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_2-970832a15808af63.rmeta: crates/bench/src/bin/table2_2.rs Cargo.toml

crates/bench/src/bin/table2_2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
