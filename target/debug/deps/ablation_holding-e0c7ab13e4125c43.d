/root/repo/target/debug/deps/ablation_holding-e0c7ab13e4125c43.d: crates/bench/src/bin/ablation_holding.rs

/root/repo/target/debug/deps/ablation_holding-e0c7ab13e4125c43: crates/bench/src/bin/ablation_holding.rs

crates/bench/src/bin/ablation_holding.rs:
