/root/repo/target/debug/deps/table2_2-7d5f494ca3e5c3e4.d: crates/bench/src/bin/table2_2.rs

/root/repo/target/debug/deps/table2_2-7d5f494ca3e5c3e4: crates/bench/src/bin/table2_2.rs

crates/bench/src/bin/table2_2.rs:
