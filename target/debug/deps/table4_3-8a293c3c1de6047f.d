/root/repo/target/debug/deps/table4_3-8a293c3c1de6047f.d: crates/bench/src/bin/table4_3.rs

/root/repo/target/debug/deps/table4_3-8a293c3c1de6047f: crates/bench/src/bin/table4_3.rs

crates/bench/src/bin/table4_3.rs:
