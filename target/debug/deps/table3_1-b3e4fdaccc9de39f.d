/root/repo/target/debug/deps/table3_1-b3e4fdaccc9de39f.d: crates/bench/src/bin/table3_1.rs

/root/repo/target/debug/deps/table3_1-b3e4fdaccc9de39f: crates/bench/src/bin/table3_1.rs

crates/bench/src/bin/table3_1.rs:
