/root/repo/target/debug/deps/table2_3_2_4-e8f23dc6541118a7.d: crates/bench/src/bin/table2_3_2_4.rs

/root/repo/target/debug/deps/table2_3_2_4-e8f23dc6541118a7: crates/bench/src/bin/table2_3_2_4.rs

crates/bench/src/bin/table2_3_2_4.rs:
