/root/repo/target/debug/deps/table4_1-e9177ae7b912b92e.d: crates/bench/src/bin/table4_1.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_1-e9177ae7b912b92e.rmeta: crates/bench/src/bin/table4_1.rs Cargo.toml

crates/bench/src/bin/table4_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
