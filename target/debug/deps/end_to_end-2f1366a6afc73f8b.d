/root/repo/target/debug/deps/end_to_end-2f1366a6afc73f8b.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-2f1366a6afc73f8b.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
