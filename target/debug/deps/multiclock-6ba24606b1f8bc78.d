/root/repo/target/debug/deps/multiclock-6ba24606b1f8bc78.d: crates/bench/src/bin/multiclock.rs

/root/repo/target/debug/deps/multiclock-6ba24606b1f8bc78: crates/bench/src/bin/multiclock.rs

crates/bench/src/bin/multiclock.rs:
