/root/repo/target/debug/deps/table4_2-f9b135114d4f67c4.d: crates/bench/src/bin/table4_2.rs

/root/repo/target/debug/deps/table4_2-f9b135114d4f67c4: crates/bench/src/bin/table4_2.rs

crates/bench/src/bin/table4_2.rs:
