/root/repo/target/debug/deps/table2_5_2_6-138fbc332fec937f.d: crates/bench/src/bin/table2_5_2_6.rs

/root/repo/target/debug/deps/table2_5_2_6-138fbc332fec937f: crates/bench/src/bin/table2_5_2_6.rs

crates/bench/src/bin/table2_5_2_6.rs:
