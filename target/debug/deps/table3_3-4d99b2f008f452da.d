/root/repo/target/debug/deps/table3_3-4d99b2f008f452da.d: crates/bench/src/bin/table3_3.rs

/root/repo/target/debug/deps/table3_3-4d99b2f008f452da: crates/bench/src/bin/table3_3.rs

crates/bench/src/bin/table3_3.rs:
