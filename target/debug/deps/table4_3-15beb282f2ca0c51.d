/root/repo/target/debug/deps/table4_3-15beb282f2ca0c51.d: crates/bench/src/bin/table4_3.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_3-15beb282f2ca0c51.rmeta: crates/bench/src/bin/table4_3.rs Cargo.toml

crates/bench/src/bin/table4_3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
