/root/repo/target/debug/deps/fbt_netlist-409947d9196cccbc.d: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/netlist.rs crates/netlist/src/rng.rs crates/netlist/src/synth.rs crates/netlist/src/verilog.rs Cargo.toml

/root/repo/target/debug/deps/libfbt_netlist-409947d9196cccbc.rmeta: crates/netlist/src/lib.rs crates/netlist/src/analysis.rs crates/netlist/src/bench.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/netlist.rs crates/netlist/src/rng.rs crates/netlist/src/synth.rs crates/netlist/src/verilog.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/analysis.rs:
crates/netlist/src/bench.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gate.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/rng.rs:
crates/netlist/src/synth.rs:
crates/netlist/src/verilog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
