/root/repo/target/debug/deps/generation-789e8b246e8ad532.d: crates/bench/benches/generation.rs

/root/repo/target/debug/deps/generation-789e8b246e8ad532: crates/bench/benches/generation.rs

crates/bench/benches/generation.rs:
