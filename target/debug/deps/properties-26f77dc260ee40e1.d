/root/repo/target/debug/deps/properties-26f77dc260ee40e1.d: tests/properties.rs

/root/repo/target/debug/deps/properties-26f77dc260ee40e1: tests/properties.rs

tests/properties.rs:
