/root/repo/target/debug/deps/fbt_core-3ef87c7b9e95a049.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/constrained.rs crates/core/src/curve.rs crates/core/src/domains.rs crates/core/src/driver.rs crates/core/src/experiment.rs crates/core/src/extract.rs crates/core/src/holding.rs crates/core/src/overtest.rs crates/core/src/session.rs crates/core/src/stp.rs crates/core/src/unconstrained.rs Cargo.toml

/root/repo/target/debug/deps/libfbt_core-3ef87c7b9e95a049.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/constrained.rs crates/core/src/curve.rs crates/core/src/domains.rs crates/core/src/driver.rs crates/core/src/experiment.rs crates/core/src/extract.rs crates/core/src/holding.rs crates/core/src/overtest.rs crates/core/src/session.rs crates/core/src/stp.rs crates/core/src/unconstrained.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/constrained.rs:
crates/core/src/curve.rs:
crates/core/src/domains.rs:
crates/core/src/driver.rs:
crates/core/src/experiment.rs:
crates/core/src/extract.rs:
crates/core/src/holding.rs:
crates/core/src/overtest.rs:
crates/core/src/session.rs:
crates/core/src/stp.rs:
crates/core/src/unconstrained.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
