/root/repo/target/debug/deps/ndetect-ecde9331783b7a8d.d: crates/bench/src/bin/ndetect.rs Cargo.toml

/root/repo/target/debug/deps/libndetect-ecde9331783b7a8d.rmeta: crates/bench/src/bin/ndetect.rs Cargo.toml

crates/bench/src/bin/ndetect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
