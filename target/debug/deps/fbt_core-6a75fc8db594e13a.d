/root/repo/target/debug/deps/fbt_core-6a75fc8db594e13a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/constrained.rs crates/core/src/curve.rs crates/core/src/domains.rs crates/core/src/driver.rs crates/core/src/experiment.rs crates/core/src/extract.rs crates/core/src/holding.rs crates/core/src/overtest.rs crates/core/src/session.rs crates/core/src/stp.rs crates/core/src/unconstrained.rs

/root/repo/target/debug/deps/fbt_core-6a75fc8db594e13a: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/constrained.rs crates/core/src/curve.rs crates/core/src/domains.rs crates/core/src/driver.rs crates/core/src/experiment.rs crates/core/src/extract.rs crates/core/src/holding.rs crates/core/src/overtest.rs crates/core/src/session.rs crates/core/src/stp.rs crates/core/src/unconstrained.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/constrained.rs:
crates/core/src/curve.rs:
crates/core/src/domains.rs:
crates/core/src/driver.rs:
crates/core/src/experiment.rs:
crates/core/src/extract.rs:
crates/core/src/holding.rs:
crates/core/src/overtest.rs:
crates/core/src/session.rs:
crates/core/src/stp.rs:
crates/core/src/unconstrained.rs:
