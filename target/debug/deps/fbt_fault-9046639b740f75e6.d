/root/repo/target/debug/deps/fbt_fault-9046639b740f75e6.d: crates/fault/src/lib.rs crates/fault/src/broadside.rs crates/fault/src/engine.rs crates/fault/src/path.rs crates/fault/src/sensitize.rs crates/fault/src/sim.rs crates/fault/src/stuck.rs crates/fault/src/transition.rs Cargo.toml

/root/repo/target/debug/deps/libfbt_fault-9046639b740f75e6.rmeta: crates/fault/src/lib.rs crates/fault/src/broadside.rs crates/fault/src/engine.rs crates/fault/src/path.rs crates/fault/src/sensitize.rs crates/fault/src/sim.rs crates/fault/src/stuck.rs crates/fault/src/transition.rs Cargo.toml

crates/fault/src/lib.rs:
crates/fault/src/broadside.rs:
crates/fault/src/engine.rs:
crates/fault/src/path.rs:
crates/fault/src/sensitize.rs:
crates/fault/src/sim.rs:
crates/fault/src/stuck.rs:
crates/fault/src/transition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
