/root/repo/target/debug/deps/fbt-32d20ee274d9967d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfbt-32d20ee274d9967d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
