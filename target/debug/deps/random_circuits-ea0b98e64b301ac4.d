/root/repo/target/debug/deps/random_circuits-ea0b98e64b301ac4.d: crates/atpg/tests/random_circuits.rs

/root/repo/target/debug/deps/random_circuits-ea0b98e64b301ac4: crates/atpg/tests/random_circuits.rs

crates/atpg/tests/random_circuits.rs:
