/root/repo/target/debug/deps/fbt_sim-98a72aef9faa7168.d: crates/sim/src/lib.rs crates/sim/src/activity.rs crates/sim/src/bits.rs crates/sim/src/comb.rs crates/sim/src/event.rs crates/sim/src/reset.rs crates/sim/src/seq.rs crates/sim/src/tv.rs Cargo.toml

/root/repo/target/debug/deps/libfbt_sim-98a72aef9faa7168.rmeta: crates/sim/src/lib.rs crates/sim/src/activity.rs crates/sim/src/bits.rs crates/sim/src/comb.rs crates/sim/src/event.rs crates/sim/src/reset.rs crates/sim/src/seq.rs crates/sim/src/tv.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/activity.rs:
crates/sim/src/bits.rs:
crates/sim/src/comb.rs:
crates/sim/src/event.rs:
crates/sim/src/reset.rs:
crates/sim/src/seq.rs:
crates/sim/src/tv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
