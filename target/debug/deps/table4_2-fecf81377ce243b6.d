/root/repo/target/debug/deps/table4_2-fecf81377ce243b6.d: crates/bench/src/bin/table4_2.rs

/root/repo/target/debug/deps/table4_2-fecf81377ce243b6: crates/bench/src/bin/table4_2.rs

crates/bench/src/bin/table4_2.rs:
