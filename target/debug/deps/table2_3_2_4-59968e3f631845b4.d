/root/repo/target/debug/deps/table2_3_2_4-59968e3f631845b4.d: crates/bench/src/bin/table2_3_2_4.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_3_2_4-59968e3f631845b4.rmeta: crates/bench/src/bin/table2_3_2_4.rs Cargo.toml

crates/bench/src/bin/table2_3_2_4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
