/root/repo/target/debug/deps/fbt_atpg-deb110655dd93fa2.d: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

/root/repo/target/debug/deps/fbt_atpg-deb110655dd93fa2: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

crates/atpg/src/lib.rs:
crates/atpg/src/compaction.rs:
crates/atpg/src/frames.rs:
crates/atpg/src/implic.rs:
crates/atpg/src/necessary.rs:
crates/atpg/src/podem.rs:
crates/atpg/src/test_cube.rs:
crates/atpg/src/tpdf.rs:
