/root/repo/target/debug/deps/fbt_bench-28d2c4a032c9a3a9.d: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

/root/repo/target/debug/deps/libfbt_bench-28d2c4a032c9a3a9.rlib: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

/root/repo/target/debug/deps/libfbt_bench-28d2c4a032c9a3a9.rmeta: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

crates/bench/src/lib.rs:
crates/bench/src/ch2.rs:
crates/bench/src/ch3.rs:
crates/bench/src/ch4.rs:
