/root/repo/target/debug/deps/table3_3-33f314d15c271301.d: crates/bench/src/bin/table3_3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_3-33f314d15c271301.rmeta: crates/bench/src/bin/table3_3.rs Cargo.toml

crates/bench/src/bin/table3_3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
