/root/repo/target/debug/deps/table3_4-9017a4bff41f9eaa.d: crates/bench/src/bin/table3_4.rs

/root/repo/target/debug/deps/table3_4-9017a4bff41f9eaa: crates/bench/src/bin/table3_4.rs

crates/bench/src/bin/table3_4.rs:
