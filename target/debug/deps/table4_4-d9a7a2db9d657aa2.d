/root/repo/target/debug/deps/table4_4-d9a7a2db9d657aa2.d: crates/bench/src/bin/table4_4.rs

/root/repo/target/debug/deps/table4_4-d9a7a2db9d657aa2: crates/bench/src/bin/table4_4.rs

crates/bench/src/bin/table4_4.rs:
