/root/repo/target/debug/deps/fbt_bench-9ada3212055556e0.d: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

/root/repo/target/debug/deps/fbt_bench-9ada3212055556e0: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

crates/bench/src/lib.rs:
crates/bench/src/ch2.rs:
crates/bench/src/ch3.rs:
crates/bench/src/ch4.rs:
