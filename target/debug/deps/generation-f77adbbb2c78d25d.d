/root/repo/target/debug/deps/generation-f77adbbb2c78d25d.d: crates/bench/benches/generation.rs Cargo.toml

/root/repo/target/debug/deps/libgeneration-f77adbbb2c78d25d.rmeta: crates/bench/benches/generation.rs Cargo.toml

crates/bench/benches/generation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
