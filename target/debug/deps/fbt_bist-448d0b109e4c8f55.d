/root/repo/target/debug/deps/fbt_bist-448d0b109e4c8f55.d: crates/bist/src/lib.rs crates/bist/src/area.rs crates/bist/src/controller.rs crates/bist/src/counter.rs crates/bist/src/cube.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/holding.rs crates/bist/src/scan.rs crates/bist/src/schedule.rs crates/bist/src/tpg.rs crates/bist/src/tpg73.rs crates/bist/src/weighted.rs

/root/repo/target/debug/deps/fbt_bist-448d0b109e4c8f55: crates/bist/src/lib.rs crates/bist/src/area.rs crates/bist/src/controller.rs crates/bist/src/counter.rs crates/bist/src/cube.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/holding.rs crates/bist/src/scan.rs crates/bist/src/schedule.rs crates/bist/src/tpg.rs crates/bist/src/tpg73.rs crates/bist/src/weighted.rs

crates/bist/src/lib.rs:
crates/bist/src/area.rs:
crates/bist/src/controller.rs:
crates/bist/src/counter.rs:
crates/bist/src/cube.rs:
crates/bist/src/lfsr.rs:
crates/bist/src/misr.rs:
crates/bist/src/holding.rs:
crates/bist/src/scan.rs:
crates/bist/src/schedule.rs:
crates/bist/src/tpg.rs:
crates/bist/src/tpg73.rs:
crates/bist/src/weighted.rs:
