/root/repo/target/debug/deps/fbt_sim-58fad16b50047322.d: crates/sim/src/lib.rs crates/sim/src/activity.rs crates/sim/src/bits.rs crates/sim/src/comb.rs crates/sim/src/event.rs crates/sim/src/reset.rs crates/sim/src/seq.rs crates/sim/src/tv.rs

/root/repo/target/debug/deps/fbt_sim-58fad16b50047322: crates/sim/src/lib.rs crates/sim/src/activity.rs crates/sim/src/bits.rs crates/sim/src/comb.rs crates/sim/src/event.rs crates/sim/src/reset.rs crates/sim/src/seq.rs crates/sim/src/tv.rs

crates/sim/src/lib.rs:
crates/sim/src/activity.rs:
crates/sim/src/bits.rs:
crates/sim/src/comb.rs:
crates/sim/src/event.rs:
crates/sim/src/reset.rs:
crates/sim/src/seq.rs:
crates/sim/src/tv.rs:
