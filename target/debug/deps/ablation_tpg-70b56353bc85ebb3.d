/root/repo/target/debug/deps/ablation_tpg-70b56353bc85ebb3.d: crates/bench/src/bin/ablation_tpg.rs

/root/repo/target/debug/deps/ablation_tpg-70b56353bc85ebb3: crates/bench/src/bin/ablation_tpg.rs

crates/bench/src/bin/ablation_tpg.rs:
