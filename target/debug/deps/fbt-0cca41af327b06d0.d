/root/repo/target/debug/deps/fbt-0cca41af327b06d0.d: src/lib.rs

/root/repo/target/debug/deps/libfbt-0cca41af327b06d0.rlib: src/lib.rs

/root/repo/target/debug/deps/libfbt-0cca41af327b06d0.rmeta: src/lib.rs

src/lib.rs:
