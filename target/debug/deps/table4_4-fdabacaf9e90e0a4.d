/root/repo/target/debug/deps/table4_4-fdabacaf9e90e0a4.d: crates/bench/src/bin/table4_4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_4-fdabacaf9e90e0a4.rmeta: crates/bench/src/bin/table4_4.rs Cargo.toml

crates/bench/src/bin/table4_4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
