/root/repo/target/debug/deps/differential-9d30a156c1a89fe7.d: crates/fault/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-9d30a156c1a89fe7.rmeta: crates/fault/tests/differential.rs Cargo.toml

crates/fault/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
