/root/repo/target/debug/deps/ablation_holding-c9f3865684bf6353.d: crates/bench/src/bin/ablation_holding.rs

/root/repo/target/debug/deps/ablation_holding-c9f3865684bf6353: crates/bench/src/bin/ablation_holding.rs

crates/bench/src/bin/ablation_holding.rs:
