/root/repo/target/debug/deps/table3_4-424e34745dabb3f3.d: crates/bench/src/bin/table3_4.rs

/root/repo/target/debug/deps/table3_4-424e34745dabb3f3: crates/bench/src/bin/table3_4.rs

crates/bench/src/bin/table3_4.rs:
