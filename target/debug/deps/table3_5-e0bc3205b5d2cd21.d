/root/repo/target/debug/deps/table3_5-e0bc3205b5d2cd21.d: crates/bench/src/bin/table3_5.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_5-e0bc3205b5d2cd21.rmeta: crates/bench/src/bin/table3_5.rs Cargo.toml

crates/bench/src/bin/table3_5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
