/root/repo/target/debug/deps/invariants-0dca7c32a8bd840d.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-0dca7c32a8bd840d.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
