/root/repo/target/debug/deps/table3_2-5e2f11e4737c086c.d: crates/bench/src/bin/table3_2.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_2-5e2f11e4737c086c.rmeta: crates/bench/src/bin/table3_2.rs Cargo.toml

crates/bench/src/bin/table3_2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
