/root/repo/target/debug/deps/table2_1-f489cf6747c58754.d: crates/bench/src/bin/table2_1.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_1-f489cf6747c58754.rmeta: crates/bench/src/bin/table2_1.rs Cargo.toml

crates/bench/src/bin/table2_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
