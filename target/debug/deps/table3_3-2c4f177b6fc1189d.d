/root/repo/target/debug/deps/table3_3-2c4f177b6fc1189d.d: crates/bench/src/bin/table3_3.rs

/root/repo/target/debug/deps/table3_3-2c4f177b6fc1189d: crates/bench/src/bin/table3_3.rs

crates/bench/src/bin/table3_3.rs:
