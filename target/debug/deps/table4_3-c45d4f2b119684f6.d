/root/repo/target/debug/deps/table4_3-c45d4f2b119684f6.d: crates/bench/src/bin/table4_3.rs

/root/repo/target/debug/deps/table4_3-c45d4f2b119684f6: crates/bench/src/bin/table4_3.rs

crates/bench/src/bin/table4_3.rs:
