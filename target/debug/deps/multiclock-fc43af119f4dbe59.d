/root/repo/target/debug/deps/multiclock-fc43af119f4dbe59.d: crates/bench/src/bin/multiclock.rs Cargo.toml

/root/repo/target/debug/deps/libmulticlock-fc43af119f4dbe59.rmeta: crates/bench/src/bin/multiclock.rs Cargo.toml

crates/bench/src/bin/multiclock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
