/root/repo/target/debug/deps/table3_4-f88b9929c0960e37.d: crates/bench/src/bin/table3_4.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_4-f88b9929c0960e37.rmeta: crates/bench/src/bin/table3_4.rs Cargo.toml

crates/bench/src/bin/table3_4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
