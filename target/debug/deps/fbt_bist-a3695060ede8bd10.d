/root/repo/target/debug/deps/fbt_bist-a3695060ede8bd10.d: crates/bist/src/lib.rs crates/bist/src/area.rs crates/bist/src/controller.rs crates/bist/src/counter.rs crates/bist/src/cube.rs crates/bist/src/holding.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/scan.rs crates/bist/src/schedule.rs crates/bist/src/tpg.rs crates/bist/src/tpg73.rs crates/bist/src/weighted.rs Cargo.toml

/root/repo/target/debug/deps/libfbt_bist-a3695060ede8bd10.rmeta: crates/bist/src/lib.rs crates/bist/src/area.rs crates/bist/src/controller.rs crates/bist/src/counter.rs crates/bist/src/cube.rs crates/bist/src/holding.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/scan.rs crates/bist/src/schedule.rs crates/bist/src/tpg.rs crates/bist/src/tpg73.rs crates/bist/src/weighted.rs Cargo.toml

crates/bist/src/lib.rs:
crates/bist/src/area.rs:
crates/bist/src/controller.rs:
crates/bist/src/counter.rs:
crates/bist/src/cube.rs:
crates/bist/src/holding.rs:
crates/bist/src/lfsr.rs:
crates/bist/src/misr.rs:
crates/bist/src/scan.rs:
crates/bist/src/schedule.rs:
crates/bist/src/tpg.rs:
crates/bist/src/tpg73.rs:
crates/bist/src/weighted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
