/root/repo/target/debug/deps/table3_2-4f2e2d600c520e10.d: crates/bench/src/bin/table3_2.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_2-4f2e2d600c520e10.rmeta: crates/bench/src/bin/table3_2.rs Cargo.toml

crates/bench/src/bin/table3_2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
