/root/repo/target/debug/deps/fbt_timing-d45a23fda2ae049a.d: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

/root/repo/target/debug/deps/libfbt_timing-d45a23fda2ae049a.rlib: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

/root/repo/target/debug/deps/libfbt_timing-d45a23fda2ae049a.rmeta: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

crates/timing/src/lib.rs:
crates/timing/src/case.rs:
crates/timing/src/delay.rs:
crates/timing/src/report.rs:
crates/timing/src/select.rs:
crates/timing/src/sta.rs:
