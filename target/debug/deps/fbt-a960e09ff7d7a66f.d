/root/repo/target/debug/deps/fbt-a960e09ff7d7a66f.d: src/lib.rs

/root/repo/target/debug/deps/fbt-a960e09ff7d7a66f: src/lib.rs

src/lib.rs:
