/root/repo/target/debug/deps/table3_4-ebfc4c8959abacf8.d: crates/bench/src/bin/table3_4.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_4-ebfc4c8959abacf8.rmeta: crates/bench/src/bin/table3_4.rs Cargo.toml

crates/bench/src/bin/table3_4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
