/root/repo/target/debug/deps/table3_5-392f7152d18f116d.d: crates/bench/src/bin/table3_5.rs

/root/repo/target/debug/deps/table3_5-392f7152d18f116d: crates/bench/src/bin/table3_5.rs

crates/bench/src/bin/table3_5.rs:
