/root/repo/target/debug/deps/ndetect-113797a8a22e381e.d: crates/bench/src/bin/ndetect.rs

/root/repo/target/debug/deps/ndetect-113797a8a22e381e: crates/bench/src/bin/ndetect.rs

crates/bench/src/bin/ndetect.rs:
