/root/repo/target/debug/deps/ablation_tpg-9401959fde6a2a34.d: crates/bench/src/bin/ablation_tpg.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tpg-9401959fde6a2a34.rmeta: crates/bench/src/bin/ablation_tpg.rs Cargo.toml

crates/bench/src/bin/ablation_tpg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
