/root/repo/target/debug/deps/fbt_timing-85016ae5e485b6f9.d: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs Cargo.toml

/root/repo/target/debug/deps/libfbt_timing-85016ae5e485b6f9.rmeta: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs Cargo.toml

crates/timing/src/lib.rs:
crates/timing/src/case.rs:
crates/timing/src/delay.rs:
crates/timing/src/report.rs:
crates/timing/src/select.rs:
crates/timing/src/sta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
