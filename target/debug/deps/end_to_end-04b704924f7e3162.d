/root/repo/target/debug/deps/end_to_end-04b704924f7e3162.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-04b704924f7e3162: tests/end_to_end.rs

tests/end_to_end.rs:
