/root/repo/target/debug/deps/exhaustive_s27-07d846e4d772bad7.d: crates/atpg/tests/exhaustive_s27.rs

/root/repo/target/debug/deps/exhaustive_s27-07d846e4d772bad7: crates/atpg/tests/exhaustive_s27.rs

crates/atpg/tests/exhaustive_s27.rs:
