/root/repo/target/debug/deps/profile-3cd5c405a44d84b1.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-3cd5c405a44d84b1.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
