/root/repo/target/debug/deps/table3_1-3fc8cde29d340a34.d: crates/bench/src/bin/table3_1.rs

/root/repo/target/debug/deps/table3_1-3fc8cde29d340a34: crates/bench/src/bin/table3_1.rs

crates/bench/src/bin/table3_1.rs:
