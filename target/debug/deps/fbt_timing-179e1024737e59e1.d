/root/repo/target/debug/deps/fbt_timing-179e1024737e59e1.d: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

/root/repo/target/debug/deps/fbt_timing-179e1024737e59e1: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

crates/timing/src/lib.rs:
crates/timing/src/case.rs:
crates/timing/src/delay.rs:
crates/timing/src/report.rs:
crates/timing/src/select.rs:
crates/timing/src/sta.rs:
