/root/repo/target/debug/deps/fbt-0d7dba3c64dfb2fe.d: src/lib.rs

/root/repo/target/debug/deps/fbt-0d7dba3c64dfb2fe: src/lib.rs

src/lib.rs:
