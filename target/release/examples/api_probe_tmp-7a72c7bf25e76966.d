/root/repo/target/release/examples/api_probe_tmp-7a72c7bf25e76966.d: examples/api_probe_tmp.rs

/root/repo/target/release/examples/api_probe_tmp-7a72c7bf25e76966: examples/api_probe_tmp.rs

examples/api_probe_tmp.rs:
