/root/repo/target/release/examples/hardware_session-b77b573b817a2721.d: examples/hardware_session.rs

/root/repo/target/release/examples/hardware_session-b77b573b817a2721: examples/hardware_session.rs

examples/hardware_session.rs:
