/root/repo/target/release/examples/quickstart-7dadbc2385c40d36.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7dadbc2385c40d36: examples/quickstart.rs

examples/quickstart.rs:
