/root/repo/target/release/deps/table2_5_2_6-b5d9a287e6c3642a.d: crates/bench/src/bin/table2_5_2_6.rs

/root/repo/target/release/deps/table2_5_2_6-b5d9a287e6c3642a: crates/bench/src/bin/table2_5_2_6.rs

crates/bench/src/bin/table2_5_2_6.rs:
