/root/repo/target/release/deps/fbt_timing-ebc93b46a986950e.d: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

/root/repo/target/release/deps/libfbt_timing-ebc93b46a986950e.rlib: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

/root/repo/target/release/deps/libfbt_timing-ebc93b46a986950e.rmeta: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

crates/timing/src/lib.rs:
crates/timing/src/case.rs:
crates/timing/src/delay.rs:
crates/timing/src/report.rs:
crates/timing/src/select.rs:
crates/timing/src/sta.rs:
