/root/repo/target/release/deps/table4_2-4420e4d92e5826b9.d: crates/bench/src/bin/table4_2.rs

/root/repo/target/release/deps/table4_2-4420e4d92e5826b9: crates/bench/src/bin/table4_2.rs

crates/bench/src/bin/table4_2.rs:
