/root/repo/target/release/deps/fbt_sim-b20c2b3d1fea28f4.d: crates/sim/src/lib.rs crates/sim/src/activity.rs crates/sim/src/bits.rs crates/sim/src/comb.rs crates/sim/src/event.rs crates/sim/src/reset.rs crates/sim/src/seq.rs crates/sim/src/tv.rs

/root/repo/target/release/deps/libfbt_sim-b20c2b3d1fea28f4.rlib: crates/sim/src/lib.rs crates/sim/src/activity.rs crates/sim/src/bits.rs crates/sim/src/comb.rs crates/sim/src/event.rs crates/sim/src/reset.rs crates/sim/src/seq.rs crates/sim/src/tv.rs

/root/repo/target/release/deps/libfbt_sim-b20c2b3d1fea28f4.rmeta: crates/sim/src/lib.rs crates/sim/src/activity.rs crates/sim/src/bits.rs crates/sim/src/comb.rs crates/sim/src/event.rs crates/sim/src/reset.rs crates/sim/src/seq.rs crates/sim/src/tv.rs

crates/sim/src/lib.rs:
crates/sim/src/activity.rs:
crates/sim/src/bits.rs:
crates/sim/src/comb.rs:
crates/sim/src/event.rs:
crates/sim/src/reset.rs:
crates/sim/src/seq.rs:
crates/sim/src/tv.rs:
