/root/repo/target/release/deps/fbt_timing-6b6c85989dcd82c2.d: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

/root/repo/target/release/deps/libfbt_timing-6b6c85989dcd82c2.rlib: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

/root/repo/target/release/deps/libfbt_timing-6b6c85989dcd82c2.rmeta: crates/timing/src/lib.rs crates/timing/src/case.rs crates/timing/src/delay.rs crates/timing/src/report.rs crates/timing/src/select.rs crates/timing/src/sta.rs

crates/timing/src/lib.rs:
crates/timing/src/case.rs:
crates/timing/src/delay.rs:
crates/timing/src/report.rs:
crates/timing/src/select.rs:
crates/timing/src/sta.rs:
