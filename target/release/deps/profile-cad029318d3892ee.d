/root/repo/target/release/deps/profile-cad029318d3892ee.d: crates/bench/src/bin/profile.rs

/root/repo/target/release/deps/profile-cad029318d3892ee: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
