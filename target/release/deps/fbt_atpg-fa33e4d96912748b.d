/root/repo/target/release/deps/fbt_atpg-fa33e4d96912748b.d: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

/root/repo/target/release/deps/libfbt_atpg-fa33e4d96912748b.rlib: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

/root/repo/target/release/deps/libfbt_atpg-fa33e4d96912748b.rmeta: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

crates/atpg/src/lib.rs:
crates/atpg/src/compaction.rs:
crates/atpg/src/frames.rs:
crates/atpg/src/implic.rs:
crates/atpg/src/necessary.rs:
crates/atpg/src/podem.rs:
crates/atpg/src/test_cube.rs:
crates/atpg/src/tpdf.rs:
