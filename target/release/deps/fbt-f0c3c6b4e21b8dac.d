/root/repo/target/release/deps/fbt-f0c3c6b4e21b8dac.d: src/lib.rs

/root/repo/target/release/deps/libfbt-f0c3c6b4e21b8dac.rlib: src/lib.rs

/root/repo/target/release/deps/libfbt-f0c3c6b4e21b8dac.rmeta: src/lib.rs

src/lib.rs:
