/root/repo/target/release/deps/multiclock-30352ace47808457.d: crates/bench/src/bin/multiclock.rs

/root/repo/target/release/deps/multiclock-30352ace47808457: crates/bench/src/bin/multiclock.rs

crates/bench/src/bin/multiclock.rs:
