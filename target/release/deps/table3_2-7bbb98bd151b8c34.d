/root/repo/target/release/deps/table3_2-7bbb98bd151b8c34.d: crates/bench/src/bin/table3_2.rs

/root/repo/target/release/deps/table3_2-7bbb98bd151b8c34: crates/bench/src/bin/table3_2.rs

crates/bench/src/bin/table3_2.rs:
