/root/repo/target/release/deps/fbt_bench-9198feacbed6a0e3.d: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

/root/repo/target/release/deps/libfbt_bench-9198feacbed6a0e3.rlib: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

/root/repo/target/release/deps/libfbt_bench-9198feacbed6a0e3.rmeta: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

crates/bench/src/lib.rs:
crates/bench/src/ch2.rs:
crates/bench/src/ch3.rs:
crates/bench/src/ch4.rs:
