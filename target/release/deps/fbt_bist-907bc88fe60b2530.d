/root/repo/target/release/deps/fbt_bist-907bc88fe60b2530.d: crates/bist/src/lib.rs crates/bist/src/area.rs crates/bist/src/controller.rs crates/bist/src/counter.rs crates/bist/src/cube.rs crates/bist/src/holding.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/scan.rs crates/bist/src/schedule.rs crates/bist/src/tpg.rs crates/bist/src/tpg73.rs crates/bist/src/weighted.rs

/root/repo/target/release/deps/libfbt_bist-907bc88fe60b2530.rlib: crates/bist/src/lib.rs crates/bist/src/area.rs crates/bist/src/controller.rs crates/bist/src/counter.rs crates/bist/src/cube.rs crates/bist/src/holding.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/scan.rs crates/bist/src/schedule.rs crates/bist/src/tpg.rs crates/bist/src/tpg73.rs crates/bist/src/weighted.rs

/root/repo/target/release/deps/libfbt_bist-907bc88fe60b2530.rmeta: crates/bist/src/lib.rs crates/bist/src/area.rs crates/bist/src/controller.rs crates/bist/src/counter.rs crates/bist/src/cube.rs crates/bist/src/holding.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/scan.rs crates/bist/src/schedule.rs crates/bist/src/tpg.rs crates/bist/src/tpg73.rs crates/bist/src/weighted.rs

crates/bist/src/lib.rs:
crates/bist/src/area.rs:
crates/bist/src/controller.rs:
crates/bist/src/counter.rs:
crates/bist/src/cube.rs:
crates/bist/src/holding.rs:
crates/bist/src/lfsr.rs:
crates/bist/src/misr.rs:
crates/bist/src/scan.rs:
crates/bist/src/schedule.rs:
crates/bist/src/tpg.rs:
crates/bist/src/tpg73.rs:
crates/bist/src/weighted.rs:
