/root/repo/target/release/deps/ablation_holding-d5716d8c30f682d0.d: crates/bench/src/bin/ablation_holding.rs

/root/repo/target/release/deps/ablation_holding-d5716d8c30f682d0: crates/bench/src/bin/ablation_holding.rs

crates/bench/src/bin/ablation_holding.rs:
