/root/repo/target/release/deps/ndetect-1ff3401b1d5bd642.d: crates/bench/src/bin/ndetect.rs

/root/repo/target/release/deps/ndetect-1ff3401b1d5bd642: crates/bench/src/bin/ndetect.rs

crates/bench/src/bin/ndetect.rs:
