/root/repo/target/release/deps/fbt_fault-cfc6678f73010ed6.d: crates/fault/src/lib.rs crates/fault/src/broadside.rs crates/fault/src/engine.rs crates/fault/src/path.rs crates/fault/src/sensitize.rs crates/fault/src/sim.rs crates/fault/src/stuck.rs crates/fault/src/transition.rs

/root/repo/target/release/deps/libfbt_fault-cfc6678f73010ed6.rlib: crates/fault/src/lib.rs crates/fault/src/broadside.rs crates/fault/src/engine.rs crates/fault/src/path.rs crates/fault/src/sensitize.rs crates/fault/src/sim.rs crates/fault/src/stuck.rs crates/fault/src/transition.rs

/root/repo/target/release/deps/libfbt_fault-cfc6678f73010ed6.rmeta: crates/fault/src/lib.rs crates/fault/src/broadside.rs crates/fault/src/engine.rs crates/fault/src/path.rs crates/fault/src/sensitize.rs crates/fault/src/sim.rs crates/fault/src/stuck.rs crates/fault/src/transition.rs

crates/fault/src/lib.rs:
crates/fault/src/broadside.rs:
crates/fault/src/engine.rs:
crates/fault/src/path.rs:
crates/fault/src/sensitize.rs:
crates/fault/src/sim.rs:
crates/fault/src/stuck.rs:
crates/fault/src/transition.rs:
