/root/repo/target/release/deps/table2_1-f89618c28d167fb5.d: crates/bench/src/bin/table2_1.rs

/root/repo/target/release/deps/table2_1-f89618c28d167fb5: crates/bench/src/bin/table2_1.rs

crates/bench/src/bin/table2_1.rs:
