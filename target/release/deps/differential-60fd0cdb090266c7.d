/root/repo/target/release/deps/differential-60fd0cdb090266c7.d: crates/fault/tests/differential.rs

/root/repo/target/release/deps/differential-60fd0cdb090266c7: crates/fault/tests/differential.rs

crates/fault/tests/differential.rs:
