/root/repo/target/release/deps/table2_2-915a1a51379f26fd.d: crates/bench/src/bin/table2_2.rs

/root/repo/target/release/deps/table2_2-915a1a51379f26fd: crates/bench/src/bin/table2_2.rs

crates/bench/src/bin/table2_2.rs:
