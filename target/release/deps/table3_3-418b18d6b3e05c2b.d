/root/repo/target/release/deps/table3_3-418b18d6b3e05c2b.d: crates/bench/src/bin/table3_3.rs

/root/repo/target/release/deps/table3_3-418b18d6b3e05c2b: crates/bench/src/bin/table3_3.rs

crates/bench/src/bin/table3_3.rs:
