/root/repo/target/release/deps/table3_4-47b6044a0c9ccc5b.d: crates/bench/src/bin/table3_4.rs

/root/repo/target/release/deps/table3_4-47b6044a0c9ccc5b: crates/bench/src/bin/table3_4.rs

crates/bench/src/bin/table3_4.rs:
