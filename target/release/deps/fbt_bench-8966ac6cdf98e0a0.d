/root/repo/target/release/deps/fbt_bench-8966ac6cdf98e0a0.d: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

/root/repo/target/release/deps/libfbt_bench-8966ac6cdf98e0a0.rlib: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

/root/repo/target/release/deps/libfbt_bench-8966ac6cdf98e0a0.rmeta: crates/bench/src/lib.rs crates/bench/src/ch2.rs crates/bench/src/ch3.rs crates/bench/src/ch4.rs

crates/bench/src/lib.rs:
crates/bench/src/ch2.rs:
crates/bench/src/ch3.rs:
crates/bench/src/ch4.rs:
