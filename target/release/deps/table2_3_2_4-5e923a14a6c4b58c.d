/root/repo/target/release/deps/table2_3_2_4-5e923a14a6c4b58c.d: crates/bench/src/bin/table2_3_2_4.rs

/root/repo/target/release/deps/table2_3_2_4-5e923a14a6c4b58c: crates/bench/src/bin/table2_3_2_4.rs

crates/bench/src/bin/table2_3_2_4.rs:
