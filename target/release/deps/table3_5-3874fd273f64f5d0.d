/root/repo/target/release/deps/table3_5-3874fd273f64f5d0.d: crates/bench/src/bin/table3_5.rs

/root/repo/target/release/deps/table3_5-3874fd273f64f5d0: crates/bench/src/bin/table3_5.rs

crates/bench/src/bin/table3_5.rs:
