/root/repo/target/release/deps/fbt_bist-b12c9e7a26bd91d2.d: crates/bist/src/lib.rs crates/bist/src/area.rs crates/bist/src/controller.rs crates/bist/src/counter.rs crates/bist/src/cube.rs crates/bist/src/holding.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/scan.rs crates/bist/src/schedule.rs crates/bist/src/tpg.rs crates/bist/src/tpg73.rs crates/bist/src/weighted.rs

/root/repo/target/release/deps/libfbt_bist-b12c9e7a26bd91d2.rlib: crates/bist/src/lib.rs crates/bist/src/area.rs crates/bist/src/controller.rs crates/bist/src/counter.rs crates/bist/src/cube.rs crates/bist/src/holding.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/scan.rs crates/bist/src/schedule.rs crates/bist/src/tpg.rs crates/bist/src/tpg73.rs crates/bist/src/weighted.rs

/root/repo/target/release/deps/libfbt_bist-b12c9e7a26bd91d2.rmeta: crates/bist/src/lib.rs crates/bist/src/area.rs crates/bist/src/controller.rs crates/bist/src/counter.rs crates/bist/src/cube.rs crates/bist/src/holding.rs crates/bist/src/lfsr.rs crates/bist/src/misr.rs crates/bist/src/scan.rs crates/bist/src/schedule.rs crates/bist/src/tpg.rs crates/bist/src/tpg73.rs crates/bist/src/weighted.rs

crates/bist/src/lib.rs:
crates/bist/src/area.rs:
crates/bist/src/controller.rs:
crates/bist/src/counter.rs:
crates/bist/src/cube.rs:
crates/bist/src/holding.rs:
crates/bist/src/lfsr.rs:
crates/bist/src/misr.rs:
crates/bist/src/scan.rs:
crates/bist/src/schedule.rs:
crates/bist/src/tpg.rs:
crates/bist/src/tpg73.rs:
crates/bist/src/weighted.rs:
