/root/repo/target/release/deps/fbt_atpg-2aa09e8cfaac85de.d: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

/root/repo/target/release/deps/libfbt_atpg-2aa09e8cfaac85de.rlib: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

/root/repo/target/release/deps/libfbt_atpg-2aa09e8cfaac85de.rmeta: crates/atpg/src/lib.rs crates/atpg/src/compaction.rs crates/atpg/src/frames.rs crates/atpg/src/implic.rs crates/atpg/src/necessary.rs crates/atpg/src/podem.rs crates/atpg/src/test_cube.rs crates/atpg/src/tpdf.rs

crates/atpg/src/lib.rs:
crates/atpg/src/compaction.rs:
crates/atpg/src/frames.rs:
crates/atpg/src/implic.rs:
crates/atpg/src/necessary.rs:
crates/atpg/src/podem.rs:
crates/atpg/src/test_cube.rs:
crates/atpg/src/tpdf.rs:
