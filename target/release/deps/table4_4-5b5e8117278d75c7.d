/root/repo/target/release/deps/table4_4-5b5e8117278d75c7.d: crates/bench/src/bin/table4_4.rs

/root/repo/target/release/deps/table4_4-5b5e8117278d75c7: crates/bench/src/bin/table4_4.rs

crates/bench/src/bin/table4_4.rs:
