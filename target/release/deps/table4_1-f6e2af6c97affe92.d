/root/repo/target/release/deps/table4_1-f6e2af6c97affe92.d: crates/bench/src/bin/table4_1.rs

/root/repo/target/release/deps/table4_1-f6e2af6c97affe92: crates/bench/src/bin/table4_1.rs

crates/bench/src/bin/table4_1.rs:
