/root/repo/target/release/deps/ndetect-aad70d8c3cd43726.d: crates/bench/src/bin/ndetect.rs

/root/repo/target/release/deps/ndetect-aad70d8c3cd43726: crates/bench/src/bin/ndetect.rs

crates/bench/src/bin/ndetect.rs:
