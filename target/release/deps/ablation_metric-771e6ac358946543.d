/root/repo/target/release/deps/ablation_metric-771e6ac358946543.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/release/deps/ablation_metric-771e6ac358946543: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
