/root/repo/target/release/deps/fbt_fault-31ee01709eb0b6a4.d: crates/fault/src/lib.rs crates/fault/src/broadside.rs crates/fault/src/engine.rs crates/fault/src/path.rs crates/fault/src/sensitize.rs crates/fault/src/sim.rs crates/fault/src/stuck.rs crates/fault/src/transition.rs

/root/repo/target/release/deps/fbt_fault-31ee01709eb0b6a4: crates/fault/src/lib.rs crates/fault/src/broadside.rs crates/fault/src/engine.rs crates/fault/src/path.rs crates/fault/src/sensitize.rs crates/fault/src/sim.rs crates/fault/src/stuck.rs crates/fault/src/transition.rs

crates/fault/src/lib.rs:
crates/fault/src/broadside.rs:
crates/fault/src/engine.rs:
crates/fault/src/path.rs:
crates/fault/src/sensitize.rs:
crates/fault/src/sim.rs:
crates/fault/src/stuck.rs:
crates/fault/src/transition.rs:
