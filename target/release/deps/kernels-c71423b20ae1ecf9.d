/root/repo/target/release/deps/kernels-c71423b20ae1ecf9.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-c71423b20ae1ecf9: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
