/root/repo/target/release/deps/table3_1-aa37e57b0544b9f4.d: crates/bench/src/bin/table3_1.rs

/root/repo/target/release/deps/table3_1-aa37e57b0544b9f4: crates/bench/src/bin/table3_1.rs

crates/bench/src/bin/table3_1.rs:
