/root/repo/target/release/deps/table4_3-3e4a7247f13e8a69.d: crates/bench/src/bin/table4_3.rs

/root/repo/target/release/deps/table4_3-3e4a7247f13e8a69: crates/bench/src/bin/table4_3.rs

crates/bench/src/bin/table4_3.rs:
