/root/repo/target/release/deps/ablation_tpg-69be73db3cc8786b.d: crates/bench/src/bin/ablation_tpg.rs

/root/repo/target/release/deps/ablation_tpg-69be73db3cc8786b: crates/bench/src/bin/ablation_tpg.rs

crates/bench/src/bin/ablation_tpg.rs:
