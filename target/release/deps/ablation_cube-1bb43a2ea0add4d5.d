/root/repo/target/release/deps/ablation_cube-1bb43a2ea0add4d5.d: crates/bench/src/bin/ablation_cube.rs

/root/repo/target/release/deps/ablation_cube-1bb43a2ea0add4d5: crates/bench/src/bin/ablation_cube.rs

crates/bench/src/bin/ablation_cube.rs:
