#![warn(missing_docs)]

//! # fbt — built-in generation of functional broadside tests
//!
//! A Rust reproduction of *"Built-in generation of functional broadside
//! tests"* (DATE 2011; archival superset: B. Yao, Purdue PhD dissertation,
//! 2013), covering deterministic broadside test generation for transition
//! path delay faults, static-timing-analysis-based path selection refined by
//! input necessary assignments, and — the headline contribution — built-in
//! (on-chip) generation of functional broadside tests under primary-input
//! constraints, with an optional state-holding DFT extension.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`netlist`] — gate-level circuits, `.bench` parsing, benchmark catalog
//! * [`sim`] — bit-parallel and three-valued logic simulation
//! * [`fault`] — transition / path delay fault models and fault simulation
//! * [`atpg`] — two-frame implications, PODEM, TPDF test generation
//! * [`timing`] — STA, case analysis, critical-path selection
//! * [`bist`] — LFSR/MISR/TPG hardware models, state holding, area model
//! * [`sat`] — CDCL SAT solver and time-frame-expansion CNF encoding, for
//!   untestability proofs and reachability certification
//! * [`lint`] — static design-rule analysis over netlists, PI-constraint
//!   sets and BIST plans, plus the generators' fault pre-flight
//! * [`core`] — functional broadside BIST generation (the paper's method)
//!
//! # Quickstart
//!
//! ```
//! use fbt::core::{FunctionalBistConfig, generate_unconstrained};
//! use fbt::netlist::s27;
//!
//! let circuit = s27();
//! let config = FunctionalBistConfig::smoke();
//! let outcome = generate_unconstrained(&circuit, &config);
//! assert!(outcome.fault_coverage() > 0.0);
//! ```

pub use fbt_atpg as atpg;
pub use fbt_bist as bist;
pub use fbt_core as core;
pub use fbt_fault as fault;
pub use fbt_lint as lint;
pub use fbt_netlist as netlist;
pub use fbt_sat as sat;
pub use fbt_sim as sim;
pub use fbt_timing as timing;

pub mod prelude {
    //! The names almost every user of the workspace needs, in one import.
    //!
    //! ```
    //! use fbt::prelude::*;
    //!
    //! let net = fbt::netlist::s27();
    //! let faults = all_transition_faults(&net);
    //! let mut engine = PackedParallelSim::new(&net);
    //! let mut detected = vec![false; faults.len()];
    //! engine.run(&[], &faults, &mut detected);
    //! ```

    pub use fbt_core::{
        generate_constrained, generate_unconstrained, improve_with_holding, swafunc, Error,
        FunctionalBistConfig, GenerationStats, SearchOptions,
    };
    pub use fbt_fault::{
        all_transition_faults, collapse, BroadsideTest, FaultSimEngine, FaultSimOptions,
        PackedParallelSim, SerialSim, TestGroup, TestSet, TransitionFault, TwoPatternTest,
    };
    pub use fbt_netlist::{Netlist, NetlistBuilder, NodeId};
    pub use fbt_sat::{solve_transition_fault, DetectionVerdict, Solver};
    pub use fbt_sim::Bits;
}
